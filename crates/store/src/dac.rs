//! The database access control (DAC) queue.
//!
//! Section 3.9: "the database access control (DAC) module, one for each
//! index, buffers database access requests in a queue and communicates with
//! the local database". The DAC batches pending insertions — tuned for the
//! high insertion rates of network monitoring — and resolves queries one at
//! a time, building a response per sub-query.
//!
//! Besides functional batching, the DAC carries an explicit [`DacCostModel`]
//! so the discrete-event simulator can charge realistic per-node processing
//! time. The paper attributes part of its latency tails to exactly this
//! queue ("one of these queries was queued behind the other... query
//! database access is not interleaved with network transmission").

use crate::store::{Store, StoreKind};
use mind_types::node::SimTime;
use mind_types::{HyperRect, Record};
use std::collections::VecDeque;
use std::sync::Arc;

/// A buffered storage request.
#[derive(Debug, Clone)]
pub enum DacRequest {
    /// Store a record.
    Insert(Record),
    /// Resolve a range scan; `token` identifies the response.
    Query {
        /// Caller-chosen correlation token returned in the response.
        token: u64,
        /// The scan rectangle over the indexed dimensions.
        rect: HyperRect,
    },
}

/// The outcome of one processed query request.
#[derive(Debug, Clone)]
pub struct DacResponse {
    /// Correlation token from the request.
    pub token: u64,
    /// Matching records, as shared handles into the store's record heap —
    /// the DAC's query path never copies payloads (empty means a *negative*
    /// response — the node owns the region but has no matching data, which
    /// the paper still reports to the originator).
    pub records: Vec<Arc<Record>>,
}

/// Per-operation processing costs used to model node execution time.
///
/// Defaults approximate a mid-2000s PlanetLab node running the prototype's
/// Java + MySQL stack — deliberately slow, so that simulated insertion and
/// query latencies land in the paper's observed ranges.
#[derive(Debug, Clone, Copy)]
pub struct DacCostModel {
    /// Fixed cost to pick up a batch.
    pub batch_overhead: SimTime,
    /// Cost per inserted record.
    pub per_insert: SimTime,
    /// Fixed cost per query (SQL build + planner in the prototype).
    pub per_query: SimTime,
    /// Cost per record returned by a query.
    pub per_result: SimTime,
}

impl Default for DacCostModel {
    fn default() -> Self {
        DacCostModel {
            batch_overhead: 2_000, // 2 ms
            per_insert: 150,       // 0.15 ms
            per_query: 8_000,      // 8 ms
            per_result: 40,        // 0.04 ms
        }
    }
}

/// The DAC: a request queue in front of any [`Store`] backend.
#[derive(Debug)]
pub struct Dac {
    store: Box<dyn Store>,
    queue: VecDeque<DacRequest>,
    cost: DacCostModel,
    /// Maximum requests drained per processing round.
    batch_size: usize,
}

impl Dac {
    /// Creates a DAC over a fresh default-backend ([`StoreKind::KdTree`])
    /// store of the given dimensionality.
    pub fn new(dims: usize, cost: DacCostModel, batch_size: usize) -> Self {
        Self::with_kind(StoreKind::KdTree, dims, cost, batch_size)
    }

    /// Creates a DAC over a fresh store of the given backend kind.
    pub fn with_kind(kind: StoreKind, dims: usize, cost: DacCostModel, batch_size: usize) -> Self {
        assert!(batch_size > 0, "zero batch size");
        Dac {
            store: kind.new_store(dims),
            queue: VecDeque::new(),
            cost,
            batch_size,
        }
    }

    /// Enqueues a request.
    pub fn push(&mut self, req: DacRequest) {
        self.queue.push_back(req);
    }

    /// Number of queued, unprocessed requests.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Read access to the underlying store (histogram collection, metrics).
    pub fn store(&self) -> &dyn Store {
        self.store.as_ref()
    }

    /// Drains up to one batch of requests, returning the query responses
    /// and the simulated processing time consumed.
    ///
    /// The prototype's behaviour is preserved: requests are processed in
    /// arrival order, and a query queued behind a heavy batch waits for it —
    /// the Figure 11 hotspot effect.
    pub fn process_batch(&mut self) -> (Vec<DacResponse>, SimTime) {
        if self.queue.is_empty() {
            return (Vec::new(), 0);
        }
        let mut responses = Vec::new();
        let mut elapsed = self.cost.batch_overhead;
        for _ in 0..self.batch_size {
            let Some(req) = self.queue.pop_front() else {
                break;
            };
            match req {
                DacRequest::Insert(rec) => {
                    self.store.insert(rec);
                    elapsed += self.cost.per_insert;
                }
                DacRequest::Query { token, rect } => {
                    let records = self.store.range_records(&rect);
                    elapsed +=
                        self.cost.per_query + self.cost.per_result * records.len() as SimTime;
                    responses.push(DacResponse { token, records });
                }
            }
        }
        (responses, elapsed)
    }

    /// Processes everything in the queue, batch by batch.
    pub fn process_all(&mut self) -> (Vec<DacResponse>, SimTime) {
        let mut responses = Vec::new();
        let mut total = 0;
        while !self.queue.is_empty() {
            let (mut r, t) = self.process_batch();
            responses.append(&mut r);
            total += t;
        }
        (responses, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dac() -> Dac {
        Dac::new(2, DacCostModel::default(), 100)
    }

    #[test]
    fn inserts_then_query_in_order() {
        let mut d = dac();
        d.push(DacRequest::Insert(Record::new(vec![1, 1])));
        d.push(DacRequest::Insert(Record::new(vec![2, 2])));
        d.push(DacRequest::Query {
            token: 7,
            rect: HyperRect::new(vec![0, 0], vec![10, 10]),
        });
        assert_eq!(d.pending(), 3);
        let (resp, t) = d.process_all();
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].token, 7);
        assert_eq!(resp[0].records.len(), 2);
        assert!(t > 0);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn negative_response_for_empty_region() {
        let mut d = dac();
        d.push(DacRequest::Query {
            token: 1,
            rect: HyperRect::new(vec![5, 5], vec![6, 6]),
        });
        let (resp, _) = d.process_all();
        assert_eq!(resp.len(), 1);
        assert!(
            resp[0].records.is_empty(),
            "negative responses still answer"
        );
    }

    #[test]
    fn batching_limits_work_per_round() {
        let mut d = Dac::new(1, DacCostModel::default(), 10);
        for i in 0..25u64 {
            d.push(DacRequest::Insert(Record::new(vec![i])));
        }
        let (_, t1) = d.process_batch();
        assert_eq!(d.pending(), 15);
        let (_, _t2) = d.process_batch();
        let (_, _t3) = d.process_batch();
        assert_eq!(d.pending(), 0);
        assert!(t1 >= DacCostModel::default().batch_overhead);
        assert_eq!(d.store().len(), 25);
    }

    #[test]
    fn query_behind_big_batch_pays_for_it() {
        // The Figure 11 effect: a query's processing delay includes the
        // inserts queued ahead of it.
        let cost = DacCostModel::default();
        let mut d = Dac::new(1, cost, 10_000);
        for i in 0..5000u64 {
            d.push(DacRequest::Insert(Record::new(vec![i])));
        }
        d.push(DacRequest::Query {
            token: 1,
            rect: HyperRect::new(vec![0], vec![10]),
        });
        let (resp, t) = d.process_all();
        assert_eq!(resp.len(), 1);
        assert!(
            t >= cost.per_insert * 5000,
            "queued inserts dominate, got {t}"
        );
    }

    #[test]
    fn empty_queue_is_free() {
        let mut d = dac();
        let (resp, t) = d.process_batch();
        assert!(resp.is_empty());
        assert_eq!(t, 0);
    }
}
