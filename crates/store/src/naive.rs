//! The original array-of-structs k-d tree, kept as a reference oracle.
//!
//! This is the tree [`crate::KdTree`] replaced: one heap-allocated
//! `Vec<Value>` per point, no bounding-box pruning, and a `count_range`
//! that materializes ids just to take their length. It stays in the crate
//! for two jobs:
//!
//! * **differential testing** — the columnar tree's proptests check every
//!   query against this implementation point-for-point (see
//!   `crates/store/tests/columnar_prop.rs`), and
//! * **benchmark baseline** — `BENCH_store.json` records before/after
//!   medians with this tree as "before", so the speedup claim stays
//!   reproducible from source rather than from a number in a commit
//!   message.
//!
//! Do not use it on a hot path.

use mind_types::{HyperRect, RecordId, Value};

/// The pre-columnar k-d tree: implicit median layout over `(point, id)`
/// pairs, one `Vec<Value>` allocation per point.
#[derive(Debug, Clone, Default)]
pub struct NaiveKdTree {
    dims: usize,
    pts: Vec<(Vec<Value>, RecordId)>,
}

impl NaiveKdTree {
    /// Builds a tree over the given points.
    ///
    /// # Panics
    /// Panics if `dims == 0` or any point has a different dimensionality.
    pub fn build(dims: usize, mut pts: Vec<(Vec<Value>, RecordId)>) -> Self {
        assert!(dims > 0, "zero-dimensional tree");
        for (p, _) in &pts {
            assert_eq!(p.len(), dims, "point dimensionality mismatch");
        }
        if !pts.is_empty() {
            let len = pts.len();
            layout(&mut pts, 0, len, 0, dims);
        }
        NaiveKdTree { dims, pts }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// `true` when the tree indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Dimensionality of the indexed points.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Collects the ids of every point inside `rect` (inclusive bounds).
    pub fn range(&self, rect: &HyperRect, out: &mut Vec<RecordId>) {
        assert_eq!(rect.dims(), self.dims, "query dimensionality mismatch");
        if !self.pts.is_empty() {
            self.range_rec(rect, 0, self.pts.len(), 0, out);
        }
    }

    /// Convenience wrapper over [`Self::range`] returning a fresh vec.
    pub fn range_vec(&self, rect: &HyperRect) -> Vec<RecordId> {
        let mut out = Vec::new();
        self.range(rect, &mut out);
        out
    }

    /// Counts points inside `rect` — via a scratch id vector, which is
    /// exactly the allocation the columnar tree's counting traversal
    /// removed.
    pub fn count_range(&self, rect: &HyperRect) -> usize {
        self.range_vec(rect).len()
    }

    fn range_rec(
        &self,
        rect: &HyperRect,
        lo: usize,
        hi: usize,
        depth: usize,
        out: &mut Vec<RecordId>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let (point, id) = &self.pts[mid];
        if rect.contains_point(point) {
            out.push(*id);
        }
        let axis = depth % self.dims;
        let coord = point[axis];
        // Left subtree holds coords <= node coord on this axis, right holds
        // coords >= (duplicates may go either way, so both bounds are
        // inclusive comparisons against the query rectangle).
        if rect.lo(axis) <= coord {
            self.range_rec(rect, lo, mid, depth + 1, out);
        }
        if rect.hi(axis) >= coord {
            self.range_rec(rect, mid + 1, hi, depth + 1, out);
        }
    }

    /// Consumes the tree, returning the raw points.
    pub fn into_points(self) -> Vec<(Vec<Value>, RecordId)> {
        self.pts
    }
}

/// Recursively arranges `pts[lo..hi]` into median layout.
fn layout(pts: &mut [(Vec<Value>, RecordId)], lo: usize, hi: usize, depth: usize, dims: usize) {
    if hi - lo <= 1 {
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let axis = depth % dims;
    pts[lo..hi].select_nth_unstable_by(mid - lo, |a, b| a.0[axis].cmp(&b.0[axis]));
    layout(pts, lo, mid, depth + 1, dims);
    layout(pts, mid + 1, hi, depth + 1, dims);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_still_answers() {
        let pts: Vec<_> = (0..100)
            .map(|i| (vec![i as u64, (i * 7 % 50) as u64], RecordId(i)))
            .collect();
        let t = NaiveKdTree::build(2, pts);
        assert_eq!(t.len(), 100);
        let hits = t.range_vec(&HyperRect::new(vec![0, 0], vec![9, 49]));
        assert_eq!(hits.len(), 10);
        assert_eq!(t.count_range(&HyperRect::full(2)), 100);
    }
}
