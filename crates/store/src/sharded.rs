//! The per-core sharded store: N columnar k-d subtrees behind one
//! [`Store`](crate::Store).
//!
//! Ma & Cooperman ("Fast Query Processing by Distributing an Index over
//! CPU Caches") observe that a single big index structure leaves most of
//! a modern machine idle: one scan walks one pointer chain through one
//! cache hierarchy. Partitioning the index into per-core sub-structures
//! and scanning them scatter/gather turns the memory hierarchy itself
//! into parallelism. [`ShardedStore`] applies that design to the columnar
//! k-d tree: records are scattered across `n` [`MemStore`] subtrees by a
//! hash of their (dense, insertion-ordered) global id, and range scans
//! fan out over the shards with scoped threads, each core walking a
//! subtree that is `1/n`-th the size — small enough to live much closer
//! to its core's caches.
//!
//! **Determinism.** The parallel gather follows the same discipline as
//! `harness::run_seeds_parallel` in `mind-bench`: work is split into
//! fixed chunks (here, the shards themselves), each thread produces its
//! chunk's result independently, and the results are concatenated in
//! *shard order* — never in completion order. Thread scheduling can
//! therefore delay an answer but never reorder it, so a sharded scan
//! returns byte-identical output across runs and machines for a fixed
//! shard count. This is what lets `MIND_SHARDS` be set under the
//! replay-critical chaos suite: the backend parallelism is invisible to
//! the protocol above it.
//!
//! **Allocation discipline.** The scatter/gather scan path is covered by
//! the `storealloc` analyzer rule (no `Vec::new`, `.to_vec()`, or
//! `.clone()` in this file): buffers are sized up front with
//! `Vec::with_capacity`, per-shard local ids are remapped to global ids
//! *in place* in the vector the subtree scan already allocated, and
//! record handles move via `Arc::clone(&…)` refcount bumps only.

use crate::mem::MemStore;
use mind_types::{HyperRect, Record, RecordId};
use std::sync::Arc;

/// Below this many stored records a scan runs sequentially on the calling
/// thread — spawning scoped threads costs more than scanning a few
/// thousand points, and keeping tiny stores single-threaded also keeps
/// the simulator's many small per-version stores cheap.
const PARALLEL_SCAN_FLOOR: usize = 4096;

/// One subtree plus its local→global id map.
///
/// The inner [`MemStore`] numbers records densely from 0 in *local*
/// insertion order; `global[local]` recovers the store-wide id. The map
/// only ever appends, in lockstep with the subtree's own record heap.
#[derive(Debug)]
struct Shard {
    store: MemStore,
    global: Vec<RecordId>,
}

impl Shard {
    fn new(dims: usize) -> Self {
        Shard {
            store: MemStore::new(dims),
            // `with_capacity(0)` = no allocation until the first insert
            // (this file's lint scope has no spelled `Vec::new`).
            global: Vec::with_capacity(0),
        }
    }

    /// Subtree range scan with ids remapped to global — in place, in the
    /// vector the subtree scan returned, so the per-shard gather path
    /// performs no allocation beyond the scan itself.
    fn range_ids_global(&self, rect: &HyperRect) -> Vec<RecordId> {
        let mut ids = self.store.range_ids(rect);
        for id in &mut ids {
            *id = self.global[id.0 as usize];
        }
        ids
    }
}

/// `splitmix64` finalizer — the shard scatter hash.
///
/// Global ids are dense counters, so taking `id % n` directly would
/// stripe consecutive records round-robin; that is fine for balance but
/// couples the layout to insertion patterns (e.g. a batch of `n` records
/// would always fan out one-per-shard). A finalizing mix keeps balance
/// while making shard choice depend on every bit of the id, matching the
/// "scatter by hash" layout of the paper this backend reproduces.
#[inline]
fn scatter(id: u64) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Store`](crate::Store) that scatters records across per-core
/// [`MemStore`] subtrees and scans them in parallel — see the module docs
/// for the design and the determinism argument.
#[derive(Debug)]
pub struct ShardedStore {
    dims: usize,
    shards: Vec<Shard>,
    /// Total records across all shards — also the next global id.
    len: usize,
}

impl ShardedStore {
    /// Creates an empty store with `dims` indexed dimensions and
    /// `shard_count` subtrees.
    ///
    /// # Panics
    /// Panics if `dims` or `shard_count` is zero.
    pub fn new(dims: usize, shard_count: usize) -> Self {
        assert!(shard_count > 0, "zero-shard store");
        ShardedStore {
            dims,
            shards: (0..shard_count).map(|_| Shard::new(dims)).collect(),
            len: 0,
        }
    }

    /// Number of subtrees.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard the record with global id `id` lives in.
    #[inline]
    fn shard_of(&self, id: u64) -> usize {
        (scatter(id) % self.shards.len() as u64) as usize
    }

    /// `true` when a scan should fan out over scoped threads.
    fn parallel_scan(&self) -> bool {
        self.shards.len() > 1 && self.len >= PARALLEL_SCAN_FLOOR
    }

    /// Scatter/gather over the shards: runs `per_shard` on every shard
    /// (scoped threads when [`Self::parallel_scan`], inline otherwise) and
    /// concatenates the results **in shard order** — the deterministic
    /// fixed-chunk merge described in the module docs.
    fn gather<T, F>(&self, per_shard: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Shard) -> Vec<T> + Sync,
    {
        if self.parallel_scan() {
            std::thread::scope(|scope| {
                let f = &per_shard;
                // Spawn in shard order, join in shard order: `handles`
                // fixes the merge order before any thread runs.
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|shard| scope.spawn(move || f(shard)))
                    .collect();
                let mut parts = handles.into_iter().map(|h| match h.join() {
                    Ok(part) => part,
                    Err(panic) => std::panic::resume_unwind(panic),
                });
                let mut out = parts.next().unwrap_or_default();
                for part in parts {
                    out.extend(part);
                }
                out
            })
        } else {
            let mut parts = self.shards.iter().map(per_shard);
            let mut out = parts.next().unwrap_or_default();
            for part in parts {
                out.extend(part);
            }
            out
        }
    }

    /// Appends a record, scattering it to its id's shard.
    pub fn insert(&mut self, record: Record) -> RecordId {
        let id = RecordId(self.len as u64);
        let s = self.shard_of(id.0);
        self.shards[s].store.insert(record);
        self.shards[s].global.push(id);
        self.len += 1;
        id
    }

    /// Bulk append: one scatter pass splits the batch into per-shard
    /// sub-batches, then each subtree absorbs its sub-batch through
    /// [`MemStore::insert_batch`] — so a batch of `B` records pays at most
    /// one rebuild check per *shard*, not per record.
    pub fn insert_batch(&mut self, records: Vec<Record>) {
        let n = self.shards.len();
        let per_shard_hint = records.len() / n + 1;
        let mut parts: Vec<Vec<Record>> =
            (0..n).map(|_| Vec::with_capacity(per_shard_hint)).collect();
        for record in records {
            let id = RecordId(self.len as u64);
            let s = self.shard_of(id.0);
            parts[s].push(record);
            self.shards[s].global.push(id);
            self.len += 1;
        }
        for (shard, part) in self.shards.iter_mut().zip(parts) {
            shard.store.insert_batch(part);
        }
    }

    /// Folds every subtree's insert buffer into its tree.
    pub fn rebuild(&mut self) {
        for shard in &mut self.shards {
            shard.store.rebuild();
        }
    }

    /// Global ids of all records inside `rect`, gathered shard by shard.
    pub fn range_ids(&self, rect: &HyperRect) -> Vec<RecordId> {
        self.gather(|shard| shard.range_ids_global(rect))
    }

    /// Records matching `rect`, as shared handles, gathered shard by
    /// shard (each subtree hands out `Arc` refcount bumps, never copies).
    pub fn range_records(&self, rect: &HyperRect) -> Vec<Arc<Record>> {
        self.gather(|shard| shard.store.range_records(rect))
    }

    /// Counts records inside `rect` — per-shard counting traversals,
    /// fanned out like the scans, summed on the calling thread.
    pub fn count_range(&self, rect: &HyperRect) -> usize {
        if self.parallel_scan() {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|shard| scope.spawn(move || shard.store.count_range(rect)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(count) => count,
                        Err(panic) => std::panic::resume_unwind(panic),
                    })
                    .sum()
            })
        } else {
            self.shards
                .iter()
                .map(|shard| shard.store.count_range(rect))
                .sum()
        }
    }

    /// Approximate heap footprint: the subtrees' incrementally maintained
    /// counters plus the local→global id maps.
    pub fn approx_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.store.approx_bytes() + shard.global.len() * 8)
            .sum()
    }

    /// Total records across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Indexed dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }
}

impl crate::Store for ShardedStore {
    fn insert(&mut self, record: Record) -> RecordId {
        ShardedStore::insert(self, record)
    }
    fn insert_batch(&mut self, records: Vec<Record>) {
        ShardedStore::insert_batch(self, records);
    }
    fn rebuild(&mut self) {
        ShardedStore::rebuild(self);
    }
    fn range_ids(&self, rect: &HyperRect) -> Vec<RecordId> {
        ShardedStore::range_ids(self, rect)
    }
    fn range_records(&self, rect: &HyperRect) -> Vec<Arc<Record>> {
        ShardedStore::range_records(self, rect)
    }
    fn count_range(&self, rect: &HyperRect) -> usize {
        ShardedStore::count_range(self, rect)
    }
    fn approx_bytes(&self) -> usize {
        ShardedStore::approx_bytes(self)
    }
    fn len(&self) -> usize {
        ShardedStore::len(self)
    }
    fn dims(&self) -> usize {
        ShardedStore::dims(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vals: &[u64]) -> Record {
        Record::new(vals.to_vec())
    }

    /// Deterministic point stream (splitmix-fed), enough to cross
    /// `PARALLEL_SCAN_FLOOR` when asked.
    fn points(n: usize) -> Vec<Vec<u64>> {
        (0..n as u64)
            .map(|i| vec![scatter(i) % 10_000, scatter(i ^ 0xABCD) % 10_000, i])
            .collect()
    }

    #[test]
    fn ids_are_dense_and_insertion_ordered_across_shards() {
        let mut s = ShardedStore::new(2, 5);
        for (i, p) in points(100).iter().enumerate() {
            assert_eq!(s.insert(rec(p)), RecordId(i as u64));
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.shard_count(), 5);
        // Every id comes back exactly once over the full domain.
        let mut all = s.range_ids(&HyperRect::full(2));
        all.sort();
        let expect: Vec<RecordId> = (0..100).map(RecordId).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn agrees_with_unsharded_memstore() {
        for shard_count in [1, 2, 7] {
            let mut sharded = ShardedStore::new(2, shard_count);
            let mut flat = MemStore::new(2);
            for p in points(3000) {
                sharded.insert(rec(&p));
                flat.insert(rec(&p));
            }
            for rect in [
                HyperRect::new(vec![0, 0], vec![u64::MAX, u64::MAX]),
                HyperRect::new(vec![100, 100], vec![5_000, 7_000]),
                HyperRect::new(vec![9_999, 0], vec![9_999, 1]),
            ] {
                let mut a = sharded.range_ids(&rect);
                a.sort();
                let mut b = flat.range_ids(&rect);
                b.sort();
                assert_eq!(a, b, "{shard_count} shards");
                assert_eq!(sharded.count_range(&rect), flat.count_range(&rect));
                assert_eq!(sharded.range_records(&rect).len(), b.len());
            }
        }
    }

    #[test]
    fn parallel_gather_is_deterministic_and_correct() {
        // Above PARALLEL_SCAN_FLOOR with >1 shard: scans take the scoped-
        // thread path. The merged output must be byte-identical across
        // repeated scans (shard-order concatenation, not completion
        // order), and agree with a sequential single-shard store.
        let pts = points(PARALLEL_SCAN_FLOOR + 1000);
        let mut wide = ShardedStore::new(2, 4);
        let mut narrow = ShardedStore::new(2, 1);
        for p in &pts {
            wide.insert(rec(p));
            narrow.insert(rec(p));
        }
        assert!(wide.parallel_scan());
        assert!(!narrow.parallel_scan());
        let rect = HyperRect::new(vec![1_000, 1_000], vec![8_000, 8_000]);
        let first = wide.range_ids(&rect);
        for _ in 0..10 {
            assert_eq!(wide.range_ids(&rect), first, "gather order must not wobble");
        }
        let mut a = first.clone();
        a.sort();
        let mut b = narrow.range_ids(&rect);
        b.sort();
        assert_eq!(a, b);
        assert_eq!(wide.count_range(&rect), narrow.count_range(&rect));
        assert_eq!(wide.range_records(&rect).len(), a.len());
    }

    #[test]
    fn insert_batch_matches_single_inserts() {
        let pts = points(5000);
        let mut singles = ShardedStore::new(3, 3);
        let mut batched = ShardedStore::new(3, 3);
        for p in &pts {
            singles.insert(rec(p));
        }
        // Split across two batches so one batch lands on non-empty shards.
        let mid = pts.len() / 3;
        batched.insert_batch(pts[..mid].iter().map(|p| rec(p)).collect());
        batched.insert_batch(pts[mid..].iter().map(|p| rec(p)).collect());
        assert_eq!(batched.len(), singles.len());
        assert_eq!(batched.approx_bytes(), singles.approx_bytes());
        let rect = HyperRect::new(vec![0, 0, 100], vec![u64::MAX, u64::MAX, 4_000]);
        // Sorted compare: the batch path rebuilds each subtree at
        // different points than the single path, so the tree/buffer split
        // (and hence raw scan order) legitimately differs.
        let mut a = batched.range_ids(&rect);
        a.sort();
        let mut b = singles.range_ids(&rect);
        b.sort();
        assert_eq!(a, b);
        assert_eq!(batched.count_range(&rect), singles.count_range(&rect));
    }

    #[test]
    fn bytes_grow_and_empty_works() {
        let mut s = ShardedStore::new(1, 3);
        assert!(s.is_empty());
        assert_eq!(s.approx_bytes(), 0);
        assert_eq!(s.range_ids(&HyperRect::full(1)), vec![]);
        s.insert(rec(&[5]));
        assert!(s.approx_bytes() > 0);
        assert_eq!(s.dims(), 1);
    }

    #[test]
    #[should_panic(expected = "zero-shard store")]
    fn zero_shards_rejected() {
        ShardedStore::new(1, 0);
    }
}
