//! End-to-end MIND system tests: create → insert → query across a
//! simulated wide-area deployment, with replication, failures, versioning
//! and carried-attribute filters.

use mind_core::{CarriedFilter, ClusterConfig, MindCluster, Replication};
use mind_histogram::CutTree;
use mind_types::node::SECONDS;
use mind_types::{AttrDef, AttrKind, HyperRect, IndexSchema, NodeId, Record};

fn test_schema() -> IndexSchema {
    IndexSchema::new(
        "flows",
        vec![
            AttrDef::new("x", AttrKind::Generic, 0, 1023),
            AttrDef::new("timestamp", AttrKind::Timestamp, 0, 86_400 * 7),
            AttrDef::new("size", AttrKind::Octets, 0, 1 << 20),
            AttrDef::new("carried", AttrKind::Generic, 0, u64::MAX),
        ],
        3,
    )
}

/// A small cluster with the index created and the flood settled.
fn cluster_with_index(n_sites: usize, seed: u64, replication: Replication) -> MindCluster {
    let cfg = ClusterConfig::planetlab(n_sites, seed);
    let mut cluster = MindCluster::new(cfg);
    let schema = test_schema();
    let cuts = CutTree::even(schema.bounds(), 8);
    cluster
        .create_index(NodeId(0), schema, cuts, replication)
        .expect("create index");
    cluster.run_for(30 * SECONDS);
    cluster
}

fn rec(x: u64, ts: u64, size: u64, carried: u64) -> Record {
    Record::new(vec![x, ts, size, carried])
}

#[test]
fn create_index_reaches_every_node() {
    let cluster = cluster_with_index(16, 1, Replication::None);
    for k in 0..16 {
        assert_eq!(
            cluster.world().node(NodeId(k)).index_tags(),
            vec!["flows".to_string()],
            "node {k} missing the index"
        );
    }
}

#[test]
fn insert_from_every_node_and_query_recall() {
    let mut cluster = cluster_with_index(16, 2, Replication::None);
    // 160 records, inserted round-robin from all nodes.
    let mut expected_in_range = 0u64;
    for i in 0..160u64 {
        let x = (i * 37) % 1024;
        let ts = 1000 + i;
        let size = (i * 97) % (1 << 20);
        if (100..=500).contains(&x) {
            expected_in_range += 1;
        }
        cluster
            .insert(NodeId((i % 16) as u32), "flows", rec(x, ts, size, i))
            .unwrap();
        cluster.run_for(SECONDS / 2);
    }
    cluster.run_for(60 * SECONDS);
    assert_eq!(
        cluster.total_primary_rows("flows"),
        160,
        "every record must be stored once"
    );
    // Range query over x ∈ [100, 500], full time and size range.
    let q = HyperRect::new(vec![100, 0, 0], vec![500, 86_400 * 7, 1 << 20]);
    let outcome = cluster
        .query_and_wait(NodeId(3), "flows", q, vec![])
        .unwrap();
    assert!(outcome.complete, "query must complete");
    assert_eq!(
        outcome.records.len() as u64,
        expected_in_range,
        "perfect recall expected"
    );
    assert!(outcome.cost_nodes >= 1);
}

#[test]
fn point_query_and_empty_query() {
    let mut cluster = cluster_with_index(8, 3, Replication::None);
    cluster
        .insert(NodeId(1), "flows", rec(42, 500, 1000, 7))
        .unwrap();
    cluster.run_for(30 * SECONDS);
    let hit = cluster
        .query_and_wait(
            NodeId(5),
            "flows",
            HyperRect::new(vec![42, 500, 1000], vec![42, 500, 1000]),
            vec![],
        )
        .unwrap();
    assert!(hit.complete);
    assert_eq!(hit.records.len(), 1);
    assert_eq!(hit.records[0].value(3), 7, "carried attribute returned");
    let miss = cluster
        .query_and_wait(
            NodeId(5),
            "flows",
            HyperRect::new(vec![900, 0, 0], vec![1000, 100, 100]),
            vec![],
        )
        .unwrap();
    assert!(miss.complete, "negative responses still complete the query");
    assert!(miss.records.is_empty());
}

#[test]
fn carried_filters_apply_at_responders() {
    let mut cluster = cluster_with_index(8, 4, Replication::None);
    for i in 0..40u64 {
        cluster
            .insert(NodeId(0), "flows", rec(i * 20, 100, 50, i % 4))
            .unwrap();
        cluster.run_for(SECONDS / 4);
    }
    cluster.run_for(30 * SECONDS);
    let q = HyperRect::new(vec![0, 0, 0], vec![1023, 86_400 * 7, 1 << 20]);
    let filtered = cluster
        .query_and_wait(
            NodeId(2),
            "flows",
            q,
            vec![CarriedFilter {
                attr: 3,
                lo: 2,
                hi: 2,
            }],
        )
        .unwrap();
    assert!(filtered.complete);
    assert_eq!(filtered.records.len(), 10, "only carried == 2 records pass");
    assert!(filtered.records.iter().all(|r| r.value(3) == 2));
}

#[test]
fn duplicate_create_rejected_locally() {
    let mut cluster = cluster_with_index(4, 5, Replication::None);
    let schema = test_schema();
    let cuts = CutTree::even(schema.bounds(), 4);
    let err = cluster.create_index(NodeId(0), schema, cuts, Replication::None);
    assert!(err.is_err());
}

#[test]
fn drop_index_removes_everywhere() {
    let mut cluster = cluster_with_index(8, 6, Replication::None);
    cluster
        .world_mut()
        .with_node(NodeId(2), |n, _now, out| n.drop_index("flows", out))
        .unwrap();
    cluster.run_for(30 * SECONDS);
    for k in 0..8 {
        assert!(cluster.world().node(NodeId(k)).index_tags().is_empty());
    }
}

#[test]
fn replication_survives_node_failure() {
    let mut cluster = cluster_with_index(16, 7, Replication::Level(1));
    for i in 0..100u64 {
        cluster
            .insert(
                NodeId((i % 16) as u32),
                "flows",
                rec((i * 41) % 1024, 100 + i, 10, i),
            )
            .unwrap();
        cluster.run_for(SECONDS / 2);
    }
    cluster.run_for(60 * SECONDS);
    // Baseline recall before the failure.
    let q = HyperRect::new(vec![0, 0, 0], vec![1023, 86_400 * 7, 1 << 20]);
    let before = cluster
        .query_and_wait(NodeId(0), "flows", q.clone(), vec![])
        .unwrap();
    assert!(before.complete);
    assert_eq!(before.records.len(), 100);
    // Kill one non-origin node and let the overlay detect + take over.
    cluster.crash(NodeId(9));
    cluster.run_for(60 * SECONDS);
    let after = cluster
        .query_and_wait(NodeId(0), "flows", q, vec![])
        .unwrap();
    assert!(after.complete, "query should complete after takeover");
    assert_eq!(
        after.records.len(),
        100,
        "level-1 replication must preserve perfect recall across one failure"
    );
}

#[test]
fn no_replication_loses_data_on_failure() {
    let mut cluster = cluster_with_index(16, 8, Replication::None);
    for i in 0..100u64 {
        cluster
            .insert(
                NodeId((i % 16) as u32),
                "flows",
                rec((i * 41) % 1024, 100 + i, 10, i),
            )
            .unwrap();
        cluster.run_for(SECONDS / 2);
    }
    cluster.run_for(60 * SECONDS);
    let victim = NodeId(9);
    let lost = cluster
        .world()
        .node(victim)
        .index_state("flows")
        .unwrap()
        .primary_rows();
    assert!(lost > 0, "test needs the victim to hold data");
    cluster.crash(victim);
    cluster.run_for(60 * SECONDS);
    let q = HyperRect::new(vec![0, 0, 0], vec![1023, 86_400 * 7, 1 << 20]);
    let after = cluster
        .query_and_wait(NodeId(0), "flows", q, vec![])
        .unwrap();
    assert_eq!(
        after.records.len() as u64,
        100 - lost,
        "without replication the victim's rows are gone"
    );
}

#[test]
fn insert_latencies_recorded_with_hops() {
    let mut cluster = cluster_with_index(16, 9, Replication::None);
    for i in 0..50u64 {
        cluster
            .insert(NodeId(0), "flows", rec((i * 101) % 1024, i, 10, 0))
            .unwrap();
        cluster.run_for(SECONDS / 4);
    }
    cluster.run_for(60 * SECONDS);
    let lats = cluster.insert_latency_samples();
    assert_eq!(lats.len(), 50);
    assert!(lats.iter().all(|&l| l > 0));
    let hops = cluster.insert_hops();
    assert_eq!(hops.len(), 50);
    assert!(hops.iter().any(|&h| h > 0), "some inserts must travel");
    assert!(hops.iter().all(|&h| h <= 8), "hops bounded by diameter");
}

#[test]
fn daily_histogram_collection_installs_new_version() {
    let mut cluster = cluster_with_index(8, 10, Replication::None);
    // Day-0 data: skewed cluster near x ∈ [0, 100].
    for i in 0..200u64 {
        cluster
            .insert(
                NodeId((i % 8) as u32),
                "flows",
                rec(i % 100, i % 86_400, 10, 0),
            )
            .unwrap();
        if i % 10 == 0 {
            cluster.run_for(SECONDS);
        }
    }
    cluster.run_for(60 * SECONDS);
    // Day boundary: everyone ships histograms; collector floods version 1.
    cluster.report_day_histograms("flows", 0);
    cluster.run_for(120 * SECONDS);
    for k in 0..8 {
        let st = cluster
            .world()
            .node(NodeId(k))
            .index_state("flows")
            .unwrap();
        assert_eq!(st.versions.len(), 2, "node {k} missing the new version");
        assert_eq!(st.versions[1].from_ts, 86_400);
    }
    // Day-1 records (ts ≥ 86 400) go to version 1.
    for i in 0..100u64 {
        cluster
            .insert(
                NodeId((i % 8) as u32),
                "flows",
                rec(i % 100, 86_400 + i, 10, 0),
            )
            .unwrap();
        if i % 10 == 0 {
            cluster.run_for(SECONDS);
        }
    }
    cluster.run_for(60 * SECONDS);
    let v1_rows: u64 = (0..8)
        .map(|k| {
            cluster
                .world()
                .node(NodeId(k))
                .index_state("flows")
                .unwrap()
                .versions[1]
                .primary_rows
        })
        .sum();
    assert_eq!(v1_rows, 100, "day-1 rows must land in version 1");
    // A query spanning the day boundary consults both versions.
    let q = HyperRect::new(vec![0, 86_000, 0], vec![1023, 87_000, 1 << 20]);
    let o = cluster
        .query_and_wait(NodeId(3), "flows", q, vec![])
        .unwrap();
    assert!(o.complete);
    let expected = (86_000..86_400).len(); // day-0 records with ts in [86000, 86400): i%86400 in that range for i in 0..200 -> none
    let _ = expected;
    // All 100 day-1 records have ts in [86400, 86500) ⊂ [86000, 87000].
    assert_eq!(o.records.len(), 100);
}

#[test]
fn balanced_cuts_beat_even_cuts_on_skewed_data() {
    // Two identical clusters, one with even cuts, one with cuts balanced
    // on the (known) skewed distribution — the Figure 13 effect.
    let schema = test_schema();
    let mk_points = || -> Vec<Vec<u64>> {
        (0..400u64)
            .map(|i| vec![(i * i) % 120, 100 + i % 1000, (i * 13) % 4000])
            .collect()
    };
    let even = CutTree::even(schema.bounds(), 8);
    let pts = mk_points();
    let refs: Vec<&[u64]> = pts.iter().map(|p| p.as_slice()).collect();
    let balanced = CutTree::balanced_from_points(schema.bounds(), 8, &refs);

    let run = |cuts: CutTree| -> Vec<u64> {
        let mut cluster = MindCluster::new(ClusterConfig::planetlab(16, 11));
        cluster
            .create_index(NodeId(0), test_schema(), cuts, Replication::None)
            .unwrap();
        cluster.run_for(30 * SECONDS);
        for (i, p) in mk_points().into_iter().enumerate() {
            cluster
                .insert(
                    NodeId((i % 16) as u32),
                    "flows",
                    Record::new(vec![p[0], p[1], p[2], 0]),
                )
                .unwrap();
            if i % 20 == 0 {
                cluster.run_for(SECONDS);
            }
        }
        cluster.run_for(120 * SECONDS);
        cluster.storage_distribution("flows")
    };
    let even_dist = run(even);
    let bal_dist = run(balanced);
    assert_eq!(even_dist.iter().sum::<u64>(), 400);
    assert_eq!(bal_dist.iter().sum::<u64>(), 400);
    let even_max = *even_dist.iter().max().unwrap();
    let bal_max = *bal_dist.iter().max().unwrap();
    assert!(
        bal_max < even_max,
        "balanced cuts should reduce the hottest node: even {even_max} vs balanced {bal_max}"
    );
}

#[test]
fn anti_entropy_digests_converge_and_skip_full_transfers() {
    let mut cluster = cluster_with_index(16, 77, Replication::None);
    // Several anti-entropy periods (45s each) on a fault-free network:
    // every node ticks repeatedly against round-robin neighbors.
    cluster.run_for(300 * SECONDS);

    // The whole overlay agrees on one catalog digest.
    let reference = cluster.world().node(NodeId(0)).compute_catalog_digest();
    for k in 1..16 {
        assert_eq!(
            cluster.world().node(NodeId(k)).compute_catalog_digest(),
            reference,
            "node {k} disagrees on the catalog digest"
        );
    }

    // Ticks happened, but the converged catalog never cost a full
    // CatalogResponse: the CreateIndex flood settled (30s) before the
    // first tick fired (45s), so every digest matched on arrival.
    let sent: u64 = (0..16)
        .map(|k| cluster.world().node(NodeId(k)).metrics.catalog_digests_sent)
        .sum();
    let mismatches: u64 = (0..16)
        .map(|k| {
            cluster
                .world()
                .node(NodeId(k))
                .metrics
                .catalog_digest_mismatches
        })
        .sum();
    assert!(sent >= 16 * 5, "expected steady digest traffic, saw {sent}");
    assert_eq!(
        mismatches, 0,
        "converged overlay must not ship full catalogs"
    );
}
