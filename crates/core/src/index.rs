//! Per-node index state: schema, versions, cuts, stores.

use crate::messages::Replication;
use mind_histogram::{CutTree, GridHistogram};
use mind_store::{Store, StoreKind};
use mind_types::{IndexSchema, MindError, Record};
use std::sync::Arc;

/// One version of an index: its cuts and the local share of its data.
///
/// Versions implement the paper's daily re-balancing without data motion
/// (Section 3.7): each day's records are embedded with cuts computed from
/// the previous day's distribution, and queries consult the version(s)
/// their time range overlaps.
#[derive(Debug)]
pub struct IndexVersion {
    /// First record timestamp governed by this version.
    pub from_ts: u64,
    /// The data-space cuts of this version. Shared, not owned: the tree
    /// is immutable once computed, and at 10k nodes per-node deep copies
    /// of a depth-10 tree were the dominant resident-memory cost
    /// (DESIGN.md §16) — every node that installs the same version now
    /// points at the same allocation within a process.
    pub cuts: Arc<CutTree>,
    /// Rows this node owns as the region's primary. The backend behind
    /// the `dyn Store` is uniform across a node's versions and chosen by
    /// [`StoreKind`] in the node config (`MIND_STORE`).
    pub primary: Box<dyn Store>,
    /// Replica copies pushed by prefix neighbors. Kept separate from the
    /// primaries so that (a) join-time handoff scans return only the
    /// acceptor's own historical data (never echoes of rows the joiner
    /// already holds) and (b) storage metrics stay exact. Normal
    /// sub-queries scan both stores; region clipping keeps replica rows
    /// from double-counting because they only match sub-queries for
    /// regions this node has taken over.
    pub replicas: Box<dyn Store>,
    /// Primary rows stored (for storage-balance metrics).
    pub primary_rows: u64,
    /// Replica rows stored.
    pub replica_rows: u64,
}

/// All local state for one index.
#[derive(Debug)]
pub struct IndexState {
    /// The index schema.
    pub schema: IndexSchema,
    /// Replication level for inserts.
    pub replication: Replication,
    /// Versions ordered by `from_ts` (version number = position).
    pub versions: Vec<IndexVersion>,
    /// This node's observed data distribution for the current day,
    /// shipped to the collector at each day boundary.
    pub day_histogram: GridHistogram,
    /// Store backend used for every version's primary/replica stores
    /// (needed again at version install, crash reset, and GC time).
    pub store_kind: StoreKind,
}

impl IndexState {
    /// Creates the index with its version-0 cuts (effective from t = 0).
    pub fn new(
        schema: IndexSchema,
        cuts: impl Into<Arc<CutTree>>,
        replication: Replication,
        hist_granularity: u32,
        store_kind: StoreKind,
    ) -> Self {
        let dims = schema.indexed_dims;
        let bounds = schema.bounds();
        IndexState {
            schema,
            replication,
            versions: vec![IndexVersion {
                from_ts: 0,
                cuts: cuts.into(),
                primary: store_kind.new_store(dims),
                replicas: store_kind.new_store(dims),
                primary_rows: 0,
                replica_rows: 0,
            }],
            day_histogram: GridHistogram::new(bounds, hist_granularity),
            store_kind,
        }
    }

    /// Installs a new version. Versions must arrive in order with
    /// increasing `from_ts`; duplicates (flood re-delivery across
    /// restarts) are ignored.
    pub fn install_version(&mut self, version: u32, from_ts: u64, cuts: impl Into<Arc<CutTree>>) {
        if (version as usize) < self.versions.len() {
            return; // already installed
        }
        assert_eq!(
            version as usize,
            self.versions.len(),
            "index {}: version {} arrived out of order",
            self.schema.tag,
            version
        );
        assert!(
            from_ts >= self.versions.last().map(|v| v.from_ts).unwrap_or(0),
            "index {}: version {} from_ts regresses",
            self.schema.tag,
            version
        );
        self.versions.push(IndexVersion {
            from_ts,
            cuts: cuts.into(),
            primary: self.store_kind.new_store(self.schema.indexed_dims),
            replicas: self.store_kind.new_store(self.schema.indexed_dims),
            primary_rows: 0,
            replica_rows: 0,
        });
    }

    /// The version governing a record with timestamp `ts` (the last
    /// version whose `from_ts` is ≤ `ts`). Records with no timestamp
    /// attribute always use the latest version.
    pub fn version_for_ts(&self, ts: Option<u64>) -> u32 {
        match ts {
            None => (self.versions.len() - 1) as u32,
            Some(t) => {
                let mut v = 0;
                for (i, ver) in self.versions.iter().enumerate() {
                    if ver.from_ts <= t {
                        v = i;
                    } else {
                        break;
                    }
                }
                v as u32
            }
        }
    }

    /// The versions a query time range `[t1, t2]` overlaps (all versions
    /// when the schema has no timestamp dimension).
    pub fn versions_for_range(&self, range: Option<(u64, u64)>) -> Vec<u32> {
        match range {
            None => (0..self.versions.len() as u32).collect(),
            Some((t1, t2)) => {
                let mut out = Vec::new();
                for (i, ver) in self.versions.iter().enumerate() {
                    let end = self
                        .versions
                        .get(i + 1)
                        .map(|n| n.from_ts.saturating_sub(1))
                        .unwrap_or(u64::MAX);
                    if ver.from_ts <= t2 && t1 <= end {
                        out.push(i as u32);
                    }
                }
                out
            }
        }
    }

    /// The timestamp of a record under this schema, if the schema has a
    /// timestamp dimension.
    pub fn record_ts(&self, record: &Record) -> Option<u64> {
        self.schema.time_dim().map(|d| record.value(d))
    }

    /// Validates and clamps a record for this index.
    pub fn conform(&self, record: Record) -> Result<Record, MindError> {
        record.conform(&self.schema)
    }

    /// A version by number.
    pub fn version(&self, v: u32) -> Option<&IndexVersion> {
        self.versions.get(v as usize)
    }

    /// A version by number, mutably.
    pub fn version_mut(&mut self, v: u32) -> Option<&mut IndexVersion> {
        self.versions.get_mut(v as usize)
    }

    /// Total primary rows across versions.
    pub fn primary_rows(&self) -> u64 {
        self.versions.iter().map(|v| v.primary_rows).sum()
    }

    /// Approximate heap bytes across all versions' stores (primary +
    /// replica). Cheap — the stores maintain their counters incrementally,
    /// so storage-balance sampling never walks the record heaps.
    pub fn approx_bytes(&self) -> usize {
        self.versions
            .iter()
            .map(|v| v.primary.approx_bytes() + v.replicas.approx_bytes())
            .sum()
    }

    /// Drops every version's stored rows (crash-lost in-memory state)
    /// while keeping the catalog — schema, cut trees, version numbering —
    /// intact. Used when a node restarts after a crash.
    pub fn reset_stores(&mut self) {
        let dims = self.schema.indexed_dims;
        let kind = self.store_kind;
        for v in &mut self.versions {
            v.primary = kind.new_store(dims);
            v.replicas = kind.new_store(dims);
            v.primary_rows = 0;
            v.replica_rows = 0;
        }
    }

    /// Garbage-collects versions whose governed time range ends before
    /// `before_ts`, dropping their stores wholesale (the paper's aging
    /// model: whole versions expire, individual records never delete).
    /// The version numbering of the survivors is preserved by replacing
    /// collected stores with empty tombstones rather than renumbering.
    pub fn gc_before(&mut self, before_ts: u64) -> usize {
        let dims = self.schema.indexed_dims;
        let kind = self.store_kind;
        let mut collected = 0;
        let n = self.versions.len();
        for i in 0..n {
            let end = self
                .versions
                .get(i + 1)
                .map(|nx| nx.from_ts.saturating_sub(1))
                .unwrap_or(u64::MAX);
            let v = &mut self.versions[i];
            if end < before_ts
                && (v.primary_rows > 0
                    || v.replica_rows > 0
                    || !v.primary.is_empty()
                    || !v.replicas.is_empty())
            {
                v.primary = kind.new_store(dims);
                v.replicas = kind.new_store(dims);
                v.primary_rows = 0;
                v.replica_rows = 0;
                collected += 1;
            }
        }
        collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mind_types::{AttrDef, AttrKind, HyperRect};

    fn schema() -> IndexSchema {
        IndexSchema::new(
            "t",
            vec![
                AttrDef::new("x", AttrKind::Generic, 0, 1023),
                AttrDef::new("timestamp", AttrKind::Timestamp, 0, 86_400 * 3),
                AttrDef::new("y", AttrKind::Generic, 0, 1023),
            ],
            3,
        )
    }

    fn state() -> IndexState {
        let s = schema();
        let cuts = CutTree::even(s.bounds(), 4);
        IndexState::new(s, cuts, Replication::Level(1), 16, StoreKind::KdTree)
    }

    #[test]
    fn version_zero_covers_everything() {
        let st = state();
        assert_eq!(st.version_for_ts(Some(0)), 0);
        assert_eq!(st.version_for_ts(Some(1_000_000)), 0);
        assert_eq!(st.versions_for_range(Some((0, 100))), vec![0]);
    }

    #[test]
    fn versions_partition_time() {
        let mut st = state();
        let cuts = CutTree::even(st.schema.bounds(), 4);
        st.install_version(1, 86_400, cuts.clone());
        st.install_version(2, 2 * 86_400, cuts);
        assert_eq!(st.version_for_ts(Some(10)), 0);
        assert_eq!(st.version_for_ts(Some(86_400)), 1);
        assert_eq!(st.version_for_ts(Some(86_399)), 0);
        assert_eq!(st.version_for_ts(Some(3 * 86_400)), 2);
        assert_eq!(st.versions_for_range(Some((0, 86_399))), vec![0]);
        assert_eq!(st.versions_for_range(Some((80_000, 90_000))), vec![0, 1]);
        assert_eq!(st.versions_for_range(Some((86_400, 86_400))), vec![1]);
        assert_eq!(st.versions_for_range(None), vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_version_ignored() {
        let mut st = state();
        let cuts = CutTree::even(st.schema.bounds(), 4);
        st.install_version(1, 86_400, cuts.clone());
        st.install_version(1, 86_400, cuts);
        assert_eq!(st.versions.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn version_gap_panics() {
        let mut st = state();
        let cuts = CutTree::even(st.schema.bounds(), 4);
        st.install_version(5, 86_400, cuts);
    }

    #[test]
    fn record_ts_reads_time_dim() {
        let st = state();
        assert_eq!(st.record_ts(&Record::new(vec![1, 777, 3])), Some(777));
    }

    #[test]
    fn conform_clamps() {
        let st = state();
        let r = st.conform(Record::new(vec![5000, 10, 20])).unwrap();
        assert_eq!(r.value(0), 1023);
        let bounds: HyperRect = st.schema.bounds();
        assert!(bounds.contains_point(r.point(3)));
    }
}
