//! Query issue, split, retry, and completion tracking (Section 3.6).
//!
//! The originator announces a deadline and (optionally) a retry cadence
//! when the query is issued; both timers are *cancelled the moment the
//! tracker completes*, so finished queries leave no stale timer events in
//! the event plane — under sustained query load this is the difference
//! between O(in-flight) and O(ever-issued) pending timers.

use crate::messages::{CarriedFilter, MindPayload};
use crate::node::{token, MindNode, Out};
use crate::query::QueryTracker;
use mind_overlay::OverlayMsg;
use mind_types::node::{SimTime, TimerId};
use mind_types::{BitCode, HyperRect, MindError, NodeId};

pub(crate) const KIND_QUERY_DEADLINE: u64 = 2;
pub(crate) const KIND_QUERY_RETRY: u64 = 5;

/// What a query originator needs to re-dispatch unanswered work, plus the
/// live timer handles retired at completion.
#[derive(Debug)]
pub(crate) struct QueryRetryMeta {
    index: String,
    rect: HyperRect,
    filters: Vec<CarriedFilter>,
    attempts: u32,
    /// The pending retry-round timer (None once the budget is spent or
    /// retries are disabled).
    retry_timer: Option<TimerId>,
    /// The query's deadline timer.
    deadline_timer: TimerId,
}

impl MindNode {
    /// `query_index`: issues a multi-dimensional range query with optional
    /// carried-attribute filters; returns the query id to poll.
    pub fn query(
        &mut self,
        now: SimTime,
        index: &str,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
        out: &mut Out,
    ) -> Result<u64, MindError> {
        let state = self
            .indexes
            .get(index)
            .ok_or_else(|| MindError::UnknownIndex(index.to_string()))?;
        if rect.dims() != state.schema.indexed_dims {
            return Err(MindError::SchemaMismatch {
                index: index.to_string(),
                reason: format!(
                    "query has {} dims, index has {}",
                    rect.dims(),
                    state.schema.indexed_dims
                ),
            });
        }
        let time_range = state.schema.time_dim().map(|d| (rect.lo(d), rect.hi(d)));
        let versions = state.versions_for_range(time_range);
        let query_id = ((self.id().0 as u64) << 20) | (self.query_seq & 0xF_FFFF);
        self.query_seq += 1;
        let mut tracker = QueryTracker::new(index.to_string(), now, &versions);
        // Route one root query per overlapping version.
        let mut routed = Vec::new();
        for v in versions {
            // lint:allow(unwrap) versions_for_range returns installed versions
            match state.version(v).unwrap().cuts.query_prefix(&rect) {
                None => tracker.on_plan(now, v, vec![], None), // misses the domain
                Some(prefix) => routed.push((v, prefix)),
            }
        }
        self.queries.insert(query_id, tracker);
        // Arm the timers *before* routing: a root that answers locally can
        // complete the tracker synchronously, and completion must find the
        // handles to cancel.
        let retry_timer = if self.cfg.query_retry_interval > 0 {
            Some(out.set_timer(
                self.cfg.query_retry_interval,
                token(KIND_QUERY_RETRY, query_id),
            ))
        } else {
            None
        };
        let deadline_timer = out.set_timer(
            self.cfg.query_deadline,
            token(KIND_QUERY_DEADLINE, query_id),
        );
        self.query_meta.insert(
            query_id,
            QueryRetryMeta {
                index: index.to_string(),
                rect: rect.clone(),
                filters: filters.clone(),
                attempts: 0,
                retry_timer,
                deadline_timer,
            },
        );
        for (v, prefix) in routed {
            let payload = MindPayload::RootQuery {
                query_id,
                index: index.to_string(),
                version: v,
                rect: rect.clone(),
                filters: filters.clone(),
                origin: self.id(),
            };
            let events = self.overlay.route(now, prefix, payload, out);
            self.process_events(now, events, out);
        }
        // All versions may have missed the domain: the tracker is already
        // done and the timers just armed must be retired again.
        self.settle_query_timers(query_id, out);
        Ok(query_id)
    }

    /// If the query is finished (or gone), cancels its outstanding
    /// deadline/retry timers and drops its retry metadata. Called wherever
    /// a tracker can transition to done.
    pub(crate) fn settle_query_timers(&mut self, query_id: u64, out: &mut Out) {
        let finished = self
            .queries
            .get(&query_id)
            .map(|t| t.done())
            .unwrap_or(true);
        if finished {
            if let Some(meta) = self.query_meta.remove(&query_id) {
                if let Some(t) = meta.retry_timer {
                    out.cancel_timer(t);
                }
                out.cancel_timer(meta.deadline_timer);
            }
        }
    }

    /// The deadline fired: close the tracker and retire the retry timer.
    fn on_query_deadline(&mut self, query_id: u64, out: &mut Out) {
        if let Some(meta) = self.query_meta.remove(&query_id) {
            if let Some(t) = meta.retry_timer {
                out.cancel_timer(t);
            }
        }
        if let Some(t) = self.queries.get_mut(&query_id) {
            t.on_deadline();
        }
    }

    /// Re-drives a query's unanswered work: re-routes `RootQuery`s for
    /// versions whose plan never arrived and re-dispatches the expected
    /// sub-queries still missing answers. The tracker dedups whatever
    /// duplicate plans/responses this produces.
    fn retry_query(&mut self, now: SimTime, query_id: u64, out: &mut Out) {
        let Some((pending_versions, missing)) = self.queries.get(&query_id).and_then(|t| {
            if t.done() {
                None
            } else {
                let pending: Vec<u32> = t.plans_pending.iter().copied().collect();
                let missing: Vec<(u32, BitCode)> = t
                    .expected
                    .iter()
                    .filter(|k| !t.answered.contains(k))
                    .cloned()
                    .collect();
                Some((pending, missing))
            }
        }) else {
            // Finished (or never existed): retire the remaining timers.
            self.settle_query_timers(query_id, out);
            return;
        };
        let Some(meta) = self.query_meta.get_mut(&query_id) else {
            return;
        };
        if meta.attempts >= self.cfg.max_retries {
            meta.retry_timer = None;
            return; // budget spent; the deadline timer will close the query
        }
        meta.attempts += 1;
        let index = meta.index.clone();
        let rect = meta.rect.clone();
        let filters = meta.filters.clone();
        if !pending_versions.is_empty() || !missing.is_empty() {
            self.metrics.query_retries += 1;
        }
        // Versions still missing their plan: re-route the root query.
        let mut reroutes = Vec::new();
        if let Some(state) = self.indexes.get(&index) {
            for v in pending_versions {
                reroutes.push((
                    v,
                    state
                        .version(v)
                        .and_then(|ver| ver.cuts.query_prefix(&rect)),
                ));
            }
        }
        for (v, prefix) in reroutes {
            match prefix {
                None => {
                    if let Some(t) = self.queries.get_mut(&query_id) {
                        t.on_plan(now, v, vec![], None);
                    }
                }
                Some(prefix) => {
                    let payload = MindPayload::RootQuery {
                        query_id,
                        index: index.clone(),
                        version: v,
                        rect: rect.clone(),
                        filters: filters.clone(),
                        origin: self.id(),
                    };
                    let events = self.overlay.route(now, prefix, payload, out);
                    self.process_events(now, events, out);
                }
            }
        }
        // Announced but unanswered regions: re-dispatch their sub-queries.
        for (v, code) in missing {
            self.dispatch_subquery(
                now,
                query_id,
                index.clone(),
                v,
                code,
                rect.clone(),
                filters.clone(),
                self.id(),
                out,
            );
        }
        // Re-dispatch can complete the tracker synchronously (local
        // answers): only schedule the next round for a live query.
        let still_open = self.queries.get(&query_id).is_some_and(|t| !t.done());
        if still_open {
            let t = out.set_timer(
                self.cfg.query_retry_interval,
                token(KIND_QUERY_RETRY, query_id),
            );
            if let Some(meta) = self.query_meta.get_mut(&query_id) {
                meta.retry_timer = Some(t);
            }
        } else {
            self.settle_query_timers(query_id, out);
        }
    }

    /// The outcome of a query, once [`QueryTracker::done`].
    pub fn query_outcome(&self, query_id: u64) -> Option<crate::query::QueryOutcome> {
        self.queries
            .get(&query_id)
            .filter(|t| t.done())
            .map(|t| t.outcome())
    }

    /// Section 3.6: the first node whose region abuts the query splits it
    /// into per-region sub-queries, announces the plan to the originator,
    /// answers its own regions, and routes the rest.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn split_root_query(
        &mut self,
        now: SimTime,
        query_id: u64,
        index: &str,
        version: u32,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
        origin: NodeId,
        out: &mut Out,
    ) {
        // Take the scratch buffer up front: the index lookup below borrows
        // `self` for the rest of the split.
        let mut codes = std::mem::take(&mut self.cover_scratch);
        let ver = match self.indexes.get(index).and_then(|s| s.version(version)) {
            Some(ver) => ver,
            None => {
                // Index or version unknown here (flood race): report an
                // empty plan so the originator is not left hanging.
                self.cover_scratch = codes;
                out.send(
                    origin,
                    OverlayMsg::Direct {
                        payload: MindPayload::QueryPlan {
                            query_id,
                            version,
                            codes: vec![],
                            replaces: None,
                        },
                    },
                );
                return;
            }
        };
        // Split down to at least this node's code length so that, on a
        // balanced overlay, every sub-query maps to one node. Deeper nodes
        // refine further on arrival (see `on_subquery`).
        let min_len = self.overlay.code().map(|c| c.len()).unwrap_or(0);
        ver.cuts.covering_codes_into(&rect, min_len, &mut codes);
        out.send(
            origin,
            OverlayMsg::Direct {
                payload: MindPayload::QueryPlan {
                    query_id,
                    version,
                    codes: codes.to_vec(),
                    replaces: None,
                },
            },
        );
        for &code in &codes {
            self.dispatch_subquery(
                now,
                query_id,
                index.to_string(),
                version,
                code,
                rect.clone(),
                filters.clone(),
                origin,
                out,
            );
        }
        self.cover_scratch = codes;
    }

    /// Routes a sub-query to its region owner, or processes it here when
    /// this node is responsible.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn dispatch_subquery(
        &mut self,
        now: SimTime,
        query_id: u64,
        index: String,
        version: u32,
        code: BitCode,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
        origin: NodeId,
        out: &mut Out,
    ) {
        if self.overlay.should_answer(&code) {
            self.on_subquery(
                now, query_id, index, version, code, rect, filters, origin, out,
            );
        } else {
            let payload = MindPayload::SubQuery {
                query_id,
                index,
                version,
                code,
                rect,
                filters,
                origin,
            };
            let events = self.overlay.route(now, code, payload, out);
            self.process_events(now, events, out);
        }
    }

    /// Handles a sub-query arriving at (or dispatched to) this node.
    ///
    /// If this node's code strictly extends the region code, the region
    /// spans several nodes (unbalanced overlay): split it one level,
    /// announce the refinement atomically to the originator, and dispatch
    /// the halves. Otherwise answer it from the local store.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_subquery(
        &mut self,
        now: SimTime,
        query_id: u64,
        index: String,
        version: u32,
        code: BitCode,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
        origin: NodeId,
        out: &mut Out,
    ) {
        let my_code = self.overlay.code();
        let must_refine = match my_code {
            Some(mine) => code.is_prefix_of(&mine) && code.len() < mine.len(),
            None => false,
        };
        // Refinement requires the cut tree to be deeper than the region
        // code; a leaf region is answered whole (the tree depth is always
        // configured above the overlay depth, see MindConfig::cut_depth).
        let can_refine = self
            .indexes
            .get(&index)
            .and_then(|s| s.version(version))
            .map(|v| v.cuts.depth() > code.len())
            .unwrap_or(false);
        if must_refine && can_refine {
            let children = vec![code.child(false), code.child(true)];
            out.send(
                origin,
                OverlayMsg::Direct {
                    payload: MindPayload::QueryPlan {
                        query_id,
                        version,
                        codes: children.clone(),
                        replaces: Some(code),
                    },
                },
            );
            for child in children {
                self.dispatch_subquery(
                    now,
                    query_id,
                    index.clone(),
                    version,
                    child,
                    rect.clone(),
                    filters.clone(),
                    origin,
                    out,
                );
            }
            return;
        }
        self.enqueue_scan(
            now, query_id, index, version, code, rect, filters, origin, out,
        );
    }

    /// Handles query-class timers; `true` if `kind` was ours.
    pub(crate) fn handle_query_timer(
        &mut self,
        now: SimTime,
        kind: u64,
        arg: u64,
        out: &mut Out,
    ) -> bool {
        match kind {
            KIND_QUERY_DEADLINE => self.on_query_deadline(arg, out),
            KIND_QUERY_RETRY => self.retry_query(now, arg, out),
            _ => return false,
        }
        true
    }
}
