//! `mind-core` — the MIND distributed multi-dimensional index.
//!
//! This crate assembles the substrates (`mind-overlay`, `mind-store`,
//! `mind-histogram`) into the full system of Section 3 of the paper:
//!
//! * the **MIND interface** — `create_index`, `drop_index`,
//!   `insert_record`, `query_index`, callable on any node
//!   ([`MindNode`]),
//! * **data-space embedding** — records hash through the index's
//!   [`CutTree`](mind_histogram::CutTree) to a code and route to the owner
//!   (Sections 3.4–3.5),
//! * **query processing** — a query routes to the node owning its
//!   covering prefix, is split there into per-region sub-queries, and the
//!   responsible nodes reply *directly* to the originator, which detects
//!   completion from the announced plan (Section 3.6),
//! * **replication** — each stored record is pushed to the prefix
//!   neighbors that would take over on failure (Section 3.8),
//! * **versioned load balancing** — per-index versions, each with its own
//!   balanced cuts; an on-line daily histogram collection protocol
//!   aggregates per-node distributions at a designated node and floods the
//!   next day's cuts (Section 3.7 — the part the paper's prototype left
//!   offline, implemented here),
//! * a **DAC** processing queue per node with explicit costs, reproducing
//!   the prototype's batched, non-interleaved storage access (Section 3.9)
//!   and its latency consequences (Figure 11),
//! * [`cluster::MindCluster`] — the experiment harness that deploys a full
//!   MIND system on the `mind-netsim` testbed and gathers every metric the
//!   evaluation reports.

#![warn(missing_docs)]

pub mod audit;
pub mod cluster;
mod dac_drive;
pub mod index;
pub mod messages;
pub mod metrics;
pub mod node;
pub mod query;
mod query_track;
mod reliability;
mod rollover;
pub mod trigger;
pub mod wire_len;

pub use cluster::{ClusterConfig, MindCluster};
pub use messages::{CarriedFilter, MindPayload, Replication};
pub use metrics::{percentile, LatencySummary, NodeMetrics};
pub use node::{MindConfig, MindNode};
pub use query::{QueryOutcome, QueryTracker};
pub use trigger::{Trigger, TriggerSet};
