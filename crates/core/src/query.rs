//! Originator-side query tracking (Section 3.6).
//!
//! The originator of a query learns its sub-query *plan* (the covering
//! region codes, per index version) from the splitting node, and collects
//! per-region responses sent directly by the responsible nodes. "The
//! originator can then determine, by examining which nodes responded, when
//! the query response is complete."

use mind_types::node::SimTime;
use mind_types::{BitCode, NodeId, Record};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The in-flight state of one query at its originator.
#[derive(Debug)]
pub struct QueryTracker {
    /// Index queried.
    pub index: String,
    /// When the query was issued.
    pub issued_at: SimTime,
    /// Versions whose plan has not arrived yet.
    pub plans_pending: BTreeSet<u32>,
    /// `(version, code)` sub-queries announced by plans.
    pub expected: BTreeSet<(u32, BitCode)>,
    /// `(version, code)` sub-queries answered so far.
    pub answered: BTreeSet<(u32, BitCode)>,
    /// Distinct responding nodes (the paper's *query cost*).
    pub responders: BTreeSet<NodeId>,
    /// Records accumulated, as shared handles: responses answered from the
    /// local store arrive without ever copying payloads (wire responses
    /// are wrapped on receipt). Materialized once, in [`Self::outcome`].
    pub records: Vec<Arc<Record>>,
    /// Set when all plans arrived and every expected region answered.
    pub completed_at: Option<SimTime>,
    /// Set when the deadline passed first.
    pub timed_out: bool,
}

impl QueryTracker {
    /// Starts tracking a query that expects plans for `versions`.
    pub fn new(index: String, issued_at: SimTime, versions: &[u32]) -> Self {
        QueryTracker {
            index,
            issued_at,
            plans_pending: versions.iter().copied().collect(),
            expected: BTreeSet::new(),
            answered: BTreeSet::new(),
            responders: BTreeSet::new(),
            records: Vec::new(),
            completed_at: None,
            timed_out: false,
        }
    }

    /// Absorbs a plan for one version. A refinement plan (`replaces`
    /// set) atomically marks the coarser region answered and expects its
    /// finer pieces instead.
    pub fn on_plan(
        &mut self,
        now: SimTime,
        version: u32,
        codes: Vec<BitCode>,
        replaces: Option<BitCode>,
    ) {
        if self.done() {
            return;
        }
        match replaces {
            None => {
                self.plans_pending.remove(&version);
            }
            Some(coarse) => {
                self.answered.insert((version, coarse));
            }
        }
        for c in codes {
            self.expected.insert((version, c));
        }
        self.maybe_complete(now);
    }

    /// Absorbs one region response.
    pub fn on_response(
        &mut self,
        now: SimTime,
        version: u32,
        code: BitCode,
        responder: NodeId,
        mut records: Vec<Arc<Record>>,
    ) {
        if self.done() {
            return;
        }
        // Responses can arrive before their plan; record them regardless.
        if self.answered.insert((version, code)) {
            self.records.append(&mut records);
            self.responders.insert(responder);
        }
        self.maybe_complete(now);
    }

    /// Marks the query failed if it has not completed.
    pub fn on_deadline(&mut self) {
        if !self.done() {
            self.timed_out = true;
        }
    }

    fn maybe_complete(&mut self, now: SimTime) {
        if self.plans_pending.is_empty() && self.expected.iter().all(|k| self.answered.contains(k))
        {
            self.completed_at = Some(now);
        }
    }

    /// `true` once completed or timed out.
    pub fn done(&self) -> bool {
        self.completed_at.is_some() || self.timed_out
    }

    /// Freezes the tracker into an outcome (this is where record payloads
    /// are finally copied — once, for the caller).
    pub fn outcome(&self) -> QueryOutcome {
        QueryOutcome {
            complete: self.completed_at.is_some(),
            latency: self.completed_at.map(|t| t - self.issued_at),
            records: self.records.iter().map(|r| (**r).clone()).collect(),
            cost_nodes: self.responders.len(),
        }
    }
}

/// The result of a finished (or failed) query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// `true` when every planned region answered before the deadline.
    pub complete: bool,
    /// Time from issue to completion (None when timed out).
    pub latency: Option<SimTime>,
    /// All matching records received.
    pub records: Vec<Record>,
    /// Number of distinct nodes that answered — the paper's query cost
    /// metric (Figure 9).
    pub cost_nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(s: &str) -> BitCode {
        BitCode::parse(s).unwrap()
    }

    #[test]
    fn completes_when_all_regions_answer() {
        let mut t = QueryTracker::new("i".into(), 100, &[0]);
        t.on_plan(110, 0, vec![code("00"), code("01")], None);
        assert!(!t.done());
        t.on_response(
            120,
            0,
            code("00"),
            NodeId(1),
            vec![Arc::new(Record::new(vec![1]))],
        );
        assert!(!t.done());
        t.on_response(130, 0, code("01"), NodeId(2), vec![]);
        assert!(t.done());
        let o = t.outcome();
        assert!(o.complete);
        assert_eq!(o.latency, Some(30));
        assert_eq!(o.records.len(), 1);
        assert_eq!(o.cost_nodes, 2);
    }

    #[test]
    fn response_before_plan_counts() {
        let mut t = QueryTracker::new("i".into(), 0, &[0]);
        t.on_response(5, 0, code("1"), NodeId(3), vec![]);
        t.on_plan(10, 0, vec![code("1")], None);
        assert!(t.done());
        assert!(t.outcome().complete);
    }

    #[test]
    fn multi_version_waits_for_all_plans() {
        let mut t = QueryTracker::new("i".into(), 0, &[0, 1]);
        t.on_plan(1, 0, vec![code("0")], None);
        t.on_response(2, 0, code("0"), NodeId(1), vec![]);
        assert!(!t.done(), "version 1's plan still outstanding");
        t.on_plan(3, 1, vec![], None);
        assert!(t.done());
    }

    #[test]
    fn duplicate_responses_ignored() {
        let mut t = QueryTracker::new("i".into(), 0, &[0]);
        t.on_plan(1, 0, vec![code("0"), code("1")], None);
        t.on_response(
            2,
            0,
            code("0"),
            NodeId(1),
            vec![Arc::new(Record::new(vec![1]))],
        );
        t.on_response(
            3,
            0,
            code("0"),
            NodeId(1),
            vec![Arc::new(Record::new(vec![1]))],
        );
        assert_eq!(
            t.records.len(),
            1,
            "duplicate region answer must not double-count"
        );
        assert!(!t.done());
    }

    #[test]
    fn timeout_freezes_incomplete() {
        let mut t = QueryTracker::new("i".into(), 0, &[0]);
        t.on_plan(1, 0, vec![code("0"), code("1")], None);
        t.on_response(2, 0, code("0"), NodeId(1), vec![]);
        t.on_deadline();
        assert!(t.done());
        let o = t.outcome();
        assert!(!o.complete);
        assert_eq!(o.latency, None);
        // Late responses change nothing.
        t.on_response(
            99,
            0,
            code("1"),
            NodeId(2),
            vec![Arc::new(Record::new(vec![9]))],
        );
        assert_eq!(t.outcome().records.len(), 0);
    }

    #[test]
    fn empty_plan_completes_immediately() {
        // A query missing the data space entirely.
        let mut t = QueryTracker::new("i".into(), 7, &[0]);
        t.on_plan(9, 0, vec![], None);
        assert!(t.done());
        assert!(t.outcome().complete);
        assert_eq!(t.outcome().cost_nodes, 0);
    }
}
