//! The experiment harness: a full MIND deployment on the simulated
//! wide-area testbed.
//!
//! [`MindCluster`] is the programmatic equivalent of the paper's PlanetLab
//! deployments: it instantiates `n` [`MindNode`]s on a statically
//! constructed balanced hypercube (the way the paper "carefully
//! constructed" its 34-node overlay), places them at geographic
//! [`Site`]s, and exposes the MIND interface plus the metric collection
//! every figure of the evaluation needs.

use crate::messages::{CarriedFilter, Replication};
use crate::node::{MindConfig, MindNode};
use crate::query::QueryOutcome;
use mind_histogram::CutTree;
use mind_netsim::{SimConfig, Site, World};
use mind_overlay::{OverlayConfig, StaticTopology};
use mind_types::node::SimTime;
use mind_types::{HyperRect, IndexSchema, MindError, NodeId, Record};

/// Everything needed to stand up a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Network simulation parameters.
    pub sim: SimConfig,
    /// Overlay protocol parameters.
    pub overlay: OverlayConfig,
    /// Per-node MIND parameters.
    pub mind: MindConfig,
    /// Deployment sites; the cluster size is `sites.len()`.
    pub sites: Vec<Site>,
}

impl ClusterConfig {
    /// The paper's baseline deployment: 34 nodes at the Abilene + GÉANT
    /// router cities.
    pub fn baseline(seed: u64) -> Self {
        ClusterConfig {
            sim: SimConfig {
                seed,
                ..SimConfig::default()
            },
            overlay: OverlayConfig::default(),
            mind: MindConfig {
                store_kind: mind_store::StoreKind::from_env(),
                ..MindConfig::default()
            },
            sites: mind_netsim::topology::baseline_sites(),
        }
    }

    /// The large-scale deployment: `n` PlanetLab-like sites.
    pub fn planetlab(n: usize, seed: u64) -> Self {
        ClusterConfig {
            sim: SimConfig {
                seed,
                ..SimConfig::default()
            },
            overlay: OverlayConfig::default(),
            mind: MindConfig {
                store_kind: mind_store::StoreKind::from_env(),
                ..MindConfig::default()
            },
            sites: mind_netsim::planetlab_sites(n, seed),
        }
    }
}

/// A running MIND deployment over the discrete-event simulator.
pub struct MindCluster {
    world: World<MindNode>,
    topology: StaticTopology,
}

impl MindCluster {
    /// Builds the cluster: a balanced static overlay, one node per site.
    pub fn new(cfg: ClusterConfig) -> Self {
        let n = cfg.sites.len();
        assert!(n >= 1, "a cluster needs at least one site");
        let topology = StaticTopology::balanced(n);
        let mut world = World::new(cfg.sim);
        for (k, site) in cfg.sites.into_iter().enumerate() {
            let node = MindNode::new_static(
                NodeId(k as u32),
                topology.code(k),
                topology.neighbor_entries(k),
                cfg.overlay,
                cfg.mind,
            );
            world.add_node(node, site);
        }
        MindCluster { world, topology }
    }

    /// Number of nodes (alive or dead).
    pub fn len(&self) -> usize {
        self.world.len()
    }

    /// `true` when the cluster has no nodes (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.world.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The static code assignment (for test oracles).
    pub fn topology(&self) -> &StaticTopology {
        &self.topology
    }

    /// The underlying simulation world (failure injection, stats).
    pub fn world(&self) -> &World<MindNode> {
        &self.world
    }

    /// Mutable access to the world (outage scheduling, tracing).
    pub fn world_mut(&mut self) -> &mut World<MindNode> {
        &mut self.world
    }

    /// Advances simulated time by `d`.
    pub fn run_for(&mut self, d: SimTime) {
        let t = self.world.now() + d;
        self.world.run_until(t);
        #[cfg(feature = "audit")]
        self.audit_point("after run_for (joins/failures/takeovers settled here)");
    }

    /// Runs until simulated time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
        #[cfg(feature = "audit")]
        self.audit_point("after run_until");
    }

    /// Creates an index from node `at` (floods to all nodes).
    pub fn create_index(
        &mut self,
        at: NodeId,
        schema: IndexSchema,
        cuts: CutTree,
        replication: Replication,
    ) -> Result<(), MindError> {
        let r = self.world.with_node(at, |n, _now, out| {
            n.create_index(schema, cuts, replication, out)
        });
        #[cfg(feature = "audit")]
        self.audit_point("after create_index");
        r
    }

    /// Inserts a record into `index` from node `at`.
    pub fn insert(&mut self, at: NodeId, index: &str, record: Record) -> Result<(), MindError> {
        self.world
            .with_node(at, |n, now, out| n.insert(now, index, record, out))
    }

    /// Issues a query from node `at`; returns the query id.
    pub fn query(
        &mut self,
        at: NodeId,
        index: &str,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
    ) -> Result<u64, MindError> {
        self.world
            .with_node(at, |n, now, out| n.query(now, index, rect, filters, out))
    }

    /// The outcome of a query issued from `at`, once finished.
    pub fn query_outcome(&self, at: NodeId, query_id: u64) -> Option<QueryOutcome> {
        self.world.node(at).query_outcome(query_id)
    }

    /// Issues a query and runs the simulation until it finishes (or the
    /// deadline passes). Convenience for experiments.
    pub fn query_and_wait(
        &mut self,
        at: NodeId,
        index: &str,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
    ) -> Result<QueryOutcome, MindError> {
        let qid = self.query(at, index, rect, filters)?;
        let deadline = self.world.now() + 120 * mind_types::node::SECONDS;
        while self.world.now() < deadline {
            if let Some(o) = self.query_outcome(at, qid) {
                return Ok(o);
            }
            let next = self.world.now() + 50 * mind_types::node::MILLIS;
            self.world.run_until(next);
        }
        Ok(self.query_outcome(at, qid).unwrap_or_else(|| QueryOutcome {
            complete: false,
            latency: None,
            records: vec![],
            cost_nodes: 0,
        }))
    }

    /// Installs a standing query from node `at`; returns the trigger id.
    pub fn create_trigger(
        &mut self,
        at: NodeId,
        index: &str,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
    ) -> Result<u64, MindError> {
        self.world.with_node(at, |n, _now, out| {
            n.create_trigger(index, rect, filters, out)
        })
    }

    /// Removes a standing query from node `at`.
    pub fn drop_trigger(&mut self, at: NodeId, trigger_id: u64) {
        self.world
            .with_node(at, |n, _now, out| n.drop_trigger(trigger_id, out));
    }

    /// Notifications node `at` has received for its triggers.
    pub fn trigger_log(&self, at: NodeId) -> &[(u64, NodeId, mind_types::Record)] {
        &self.world.node(at).trigger_log
    }

    /// Garbage-collects aged index versions on every live node; returns
    /// the total number of version stores dropped.
    pub fn gc_versions(&mut self, index: &str, before_ts: u64) -> usize {
        let mut total = 0;
        for k in 0..self.world.len() {
            let id = NodeId(k as u32);
            if self.world.is_alive(id) {
                total += self.world.with_node(id, |n, _now, _out| {
                    n.gc_versions(index, before_ts).unwrap_or(0)
                });
            }
        }
        #[cfg(feature = "audit")]
        self.audit_point("after gc_versions (version rollover/GC)");
        total
    }

    /// Ships day histograms from every live node (day-boundary tick).
    pub fn report_day_histograms(&mut self, index: &str, day: u64) {
        for k in 0..self.world.len() {
            let id = NodeId(k as u32);
            if self.world.is_alive(id) {
                let _ = self.world.with_node(id, |n, now, out| {
                    n.report_day_histogram(now, index, day, out)
                });
            }
        }
    }

    /// Crashes a node (messages to it are dropped until revived).
    pub fn crash(&mut self, id: NodeId) {
        self.world.crash_node(id);
        #[cfg(feature = "audit")]
        self.audit_point("after crash (failure injected)");
    }

    /// Revives a crashed node.
    pub fn revive(&mut self, id: NodeId) {
        self.world.revive_node(id);
        #[cfg(feature = "audit")]
        self.audit_point("after revive (rejoin begins)");
    }

    /// All insertion latency samples across nodes (µs).
    pub fn insert_latency_samples(&self) -> Vec<SimTime> {
        let mut v = Vec::new();
        for k in 0..self.world.len() {
            v.extend(
                self.world
                    .node(NodeId(k as u32))
                    .metrics
                    .insert_latencies
                    .iter()
                    .map(|&(_, lat)| lat),
            );
        }
        v
    }

    /// All insertion hop counts across nodes.
    pub fn insert_hops(&self) -> Vec<u32> {
        let mut v = Vec::new();
        for k in 0..self.world.len() {
            v.extend(
                self.world
                    .node(NodeId(k as u32))
                    .metrics
                    .insert_hops
                    .iter()
                    .copied(),
            );
        }
        v
    }

    /// Primary rows per node for one index (Figure 13's series).
    pub fn storage_distribution(&self, index: &str) -> Vec<u64> {
        (0..self.world.len())
            .map(|k| {
                self.world
                    .node(NodeId(k as u32))
                    .index_state(index)
                    .map(|s| s.primary_rows())
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Total records stored (primary only) for sanity checks.
    pub fn total_primary_rows(&self, index: &str) -> u64 {
        self.storage_distribution(index).iter().sum()
    }

    /// Approximate stored bytes per node for one index (primary + replica
    /// stores, all versions). Served from the stores' incremental byte
    /// counters, so sampling this every simulated minute stays O(nodes).
    pub fn storage_bytes_distribution(&self, index: &str) -> Vec<u64> {
        (0..self.world.len())
            .map(|k| {
                self.world
                    .node(NodeId(k as u32))
                    .index_state(index)
                    .map(|s| s.approx_bytes() as u64)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_config_has_34_sites() {
        let cfg = ClusterConfig::baseline(1);
        assert_eq!(cfg.sites.len(), 34);
        let cluster = MindCluster::new(cfg);
        assert_eq!(cluster.len(), 34);
    }

    #[test]
    fn planetlab_config_sizes() {
        let cfg = ClusterConfig::planetlab(102, 2);
        assert_eq!(MindCluster::new(cfg).len(), 102);
    }
}
