//! The experiment harness: a full MIND deployment behind the
//! [`ClusterDriver`] seam.
//!
//! [`MindCluster`] is the programmatic equivalent of the paper's PlanetLab
//! deployments: `n` [`MindNode`]s on a statically constructed balanced
//! hypercube (the way the paper "carefully constructed" its 34-node
//! overlay), exposing the MIND interface plus the metric collection every
//! figure of the evaluation needs.
//!
//! The cluster is generic over **how** the nodes run: the default driver
//! is `mind-netsim`'s deterministic `World` (one process, simulated
//! clock, byte-identical replay), and the same API runs unchanged over
//! `mind-net`'s `TcpFleet` (one thread-per-connection TCP host per node,
//! real clocks, best-effort ordering). Code that needs simulator-only
//! facilities — fault plans, link outages, `SimStats` — uses the
//! sim-specialized accessors [`MindCluster::world`] /
//! [`MindCluster::world_mut`], which only exist for the sim driver.

use crate::messages::{CarriedFilter, Replication};
use crate::node::{MindConfig, MindNode};
use crate::query::QueryOutcome;
use mind_histogram::CutTree;
use mind_netsim::{SimConfig, Site, World};
use mind_overlay::{OverlayConfig, StaticTopology};
use mind_types::node::SimTime;
use mind_types::{ClusterDriver, HyperRect, IndexSchema, MindError, NodeId, Record};

/// Everything needed to stand up a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Network simulation parameters.
    pub sim: SimConfig,
    /// Overlay protocol parameters.
    pub overlay: OverlayConfig,
    /// Per-node MIND parameters.
    pub mind: MindConfig,
    /// Deployment sites; the cluster size is `sites.len()`.
    pub sites: Vec<Site>,
}

impl ClusterConfig {
    /// The paper's baseline deployment: 34 nodes at the Abilene + GÉANT
    /// router cities.
    pub fn baseline(seed: u64) -> Self {
        ClusterConfig {
            sim: SimConfig {
                seed,
                ..SimConfig::default()
            },
            overlay: OverlayConfig::default(),
            mind: MindConfig {
                store_kind: mind_store::StoreKind::from_env(),
                ..MindConfig::default()
            },
            sites: mind_netsim::topology::baseline_sites(),
        }
    }

    /// The large-scale deployment: `n` PlanetLab-like sites.
    pub fn planetlab(n: usize, seed: u64) -> Self {
        ClusterConfig {
            sim: SimConfig {
                seed,
                ..SimConfig::default()
            },
            overlay: OverlayConfig::default(),
            mind: MindConfig {
                store_kind: mind_store::StoreKind::from_env(),
                ..MindConfig::default()
            },
            sites: mind_netsim::planetlab_sites(n, seed),
        }
    }
}

/// A running MIND deployment over any [`ClusterDriver`].
///
/// The default driver is the discrete-event simulator; `MindCluster`
/// with no type argument is the simulated cluster every experiment and
/// test has always used.
pub struct MindCluster<D = World<MindNode>> {
    driver: D,
    topology: StaticTopology,
    /// Audit cadence (`MIND_AUDIT_EVERY`, default 1 = audit at every
    /// automatic audit point). See [`crate::audit::audit_every_from_env`].
    #[cfg(feature = "audit")]
    pub(crate) audit_every: u64,
    /// Automatic audit points triggered so far (the cadence counter).
    #[cfg(feature = "audit")]
    pub(crate) audit_ticks: std::cell::Cell<u64>,
}

impl MindCluster<World<MindNode>> {
    /// Builds the simulated cluster: a balanced static overlay, one node
    /// per site, on a fresh deterministic world.
    pub fn new(cfg: ClusterConfig) -> Self {
        let n = cfg.sites.len();
        assert!(n >= 1, "a cluster needs at least one site");
        let topology = StaticTopology::balanced(n);
        let mut world = World::new(cfg.sim);
        for (k, site) in cfg.sites.into_iter().enumerate() {
            let node = MindNode::new_static(
                NodeId(k as u32),
                topology.code(k),
                topology.neighbor_entries(k),
                cfg.overlay,
                cfg.mind,
            );
            world.add_node(node, site);
        }
        MindCluster {
            driver: world,
            topology,
            #[cfg(feature = "audit")]
            audit_every: crate::audit::audit_every_from_env(),
            #[cfg(feature = "audit")]
            audit_ticks: std::cell::Cell::new(0),
        }
    }

    /// The underlying simulation world (failure injection, stats).
    pub fn world(&self) -> &World<MindNode> {
        &self.driver
    }

    /// Mutable access to the world (outage scheduling, tracing).
    pub fn world_mut(&mut self) -> &mut World<MindNode> {
        &mut self.driver
    }
}

impl<D: ClusterDriver<MindNode>> MindCluster<D> {
    /// Wraps an already-populated driver (a `TcpFleet`, a hand-built
    /// world) and the static code assignment its nodes were built from.
    pub fn from_parts(driver: D, topology: StaticTopology) -> Self {
        MindCluster {
            driver,
            topology,
            #[cfg(feature = "audit")]
            audit_every: crate::audit::audit_every_from_env(),
            #[cfg(feature = "audit")]
            audit_ticks: std::cell::Cell::new(0),
        }
    }

    /// The driver this cluster runs over.
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// Mutable access to the driver.
    pub fn driver_mut(&mut self) -> &mut D {
        &mut self.driver
    }

    /// Consumes the cluster, returning the driver (fleet teardown).
    pub fn into_driver(self) -> D {
        self.driver
    }

    /// Number of nodes (alive or dead).
    pub fn len(&self) -> usize {
        self.driver.len()
    }

    /// `true` when the cluster has no nodes (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.driver.is_empty()
    }

    /// Current cluster time (simulated or wall, per the driver).
    pub fn now(&self) -> SimTime {
        self.driver.now()
    }

    /// The static code assignment (for test oracles).
    pub fn topology(&self) -> &StaticTopology {
        &self.topology
    }

    /// `true` if node `id` is currently up.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.driver.is_alive(id)
    }

    /// Runs a read-only closure against one node's logic: the generic
    /// inspection hook for tests and metric harvesters that need state
    /// this API does not expose directly.
    pub fn read_node<R, F>(&self, id: NodeId, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&MindNode) -> R + Send + 'static,
    {
        self.driver.read(id, f)
    }

    /// Runs the cluster until absolute time `t` (no-op if in the past).
    pub fn run_until(&mut self, t: SimTime) {
        let now = self.driver.now();
        if t > now {
            self.run_for(t - now);
        }
    }

    /// Advances cluster time by `d`.
    pub fn run_for(&mut self, d: SimTime) {
        self.driver.run_for(d);
        #[cfg(feature = "audit")]
        self.audit_point_gated("after run_for (joins/failures/takeovers settled here)");
    }

    /// Best-effort settle barrier bounded by `limit` (see
    /// [`ClusterDriver::quiesce`]).
    pub fn quiesce(&mut self, limit: SimTime) {
        self.driver.quiesce(limit);
        #[cfg(feature = "audit")]
        self.audit_point_gated("after quiesce");
    }

    /// Polls `cond` every [`ClusterDriver::poll_interval`] until it holds
    /// or `timeout` elapses; returns whether it held. The portable
    /// barrier for "wait until the flood/burst/rejoin lands" under either
    /// driver.
    pub fn wait_until(
        &mut self,
        timeout: SimTime,
        mut cond: impl FnMut(&mut Self) -> bool,
    ) -> bool {
        let deadline = self.driver.now() + timeout;
        loop {
            if cond(self) {
                return true;
            }
            if self.driver.now() >= deadline {
                return false;
            }
            let step = self.driver.poll_interval();
            self.driver.run_for(step);
        }
    }

    /// Creates an index from node `at` (floods to all nodes).
    pub fn create_index(
        &mut self,
        at: NodeId,
        schema: IndexSchema,
        cuts: CutTree,
        replication: Replication,
    ) -> Result<(), MindError> {
        let r = self.driver.with_node(at, move |n, _now, out| {
            n.create_index(schema, cuts, replication, out)
        });
        #[cfg(feature = "audit")]
        self.audit_point_gated("after create_index");
        r
    }

    /// Inserts a record into `index` from node `at`.
    pub fn insert(&mut self, at: NodeId, index: &str, record: Record) -> Result<(), MindError> {
        let index = index.to_string();
        self.driver
            .with_node(at, move |n, now, out| n.insert(now, &index, record, out))
    }

    /// Issues a query from node `at`; returns the query id.
    pub fn query(
        &mut self,
        at: NodeId,
        index: &str,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
    ) -> Result<u64, MindError> {
        let index = index.to_string();
        self.driver.with_node(at, move |n, now, out| {
            n.query(now, &index, rect, filters, out)
        })
    }

    /// The outcome of a query issued from `at`, once finished.
    pub fn query_outcome(&self, at: NodeId, query_id: u64) -> Option<QueryOutcome> {
        self.driver.read(at, move |n| n.query_outcome(query_id))
    }

    /// Issues a query and runs the cluster until it finishes (or the
    /// deadline passes). Convenience for experiments.
    pub fn query_and_wait(
        &mut self,
        at: NodeId,
        index: &str,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
    ) -> Result<QueryOutcome, MindError> {
        let qid = self.query(at, index, rect, filters)?;
        let deadline = self.driver.now() + 120 * mind_types::node::SECONDS;
        while self.driver.now() < deadline {
            if let Some(o) = self.query_outcome(at, qid) {
                return Ok(o);
            }
            let step = self.driver.poll_interval();
            self.driver.run_for(step);
        }
        Ok(self.query_outcome(at, qid).unwrap_or_else(|| QueryOutcome {
            complete: false,
            latency: None,
            records: vec![],
            cost_nodes: 0,
        }))
    }

    /// Installs a standing query from node `at`; returns the trigger id.
    pub fn create_trigger(
        &mut self,
        at: NodeId,
        index: &str,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
    ) -> Result<u64, MindError> {
        let index = index.to_string();
        self.driver.with_node(at, move |n, _now, out| {
            n.create_trigger(&index, rect, filters, out)
        })
    }

    /// Removes a standing query from node `at`.
    pub fn drop_trigger(&mut self, at: NodeId, trigger_id: u64) {
        self.driver
            .with_node(at, move |n, _now, out| n.drop_trigger(trigger_id, out));
    }

    /// Notifications node `at` has received for its triggers.
    pub fn trigger_log(&self, at: NodeId) -> Vec<(u64, NodeId, mind_types::Record)> {
        self.driver.read(at, |n| n.trigger_log.clone())
    }

    /// Garbage-collects aged index versions on every live node; returns
    /// the total number of version stores dropped.
    pub fn gc_versions(&mut self, index: &str, before_ts: u64) -> usize {
        let mut total = 0;
        for k in 0..self.driver.len() {
            let id = NodeId(k as u32);
            if self.driver.is_alive(id) {
                let index = index.to_string();
                total += self.driver.with_node(id, move |n, _now, _out| {
                    n.gc_versions(&index, before_ts).unwrap_or(0)
                });
            }
        }
        #[cfg(feature = "audit")]
        self.audit_point_gated("after gc_versions (version rollover/GC)");
        total
    }

    /// Ships day histograms from every live node (day-boundary tick).
    pub fn report_day_histograms(&mut self, index: &str, day: u64) {
        for k in 0..self.driver.len() {
            let id = NodeId(k as u32);
            if self.driver.is_alive(id) {
                let index = index.to_string();
                let _ = self.driver.with_node(id, move |n, now, out| {
                    n.report_day_histogram(now, &index, day, out)
                });
            }
        }
    }

    /// Crashes a node (messages to it are dropped until revived).
    pub fn crash(&mut self, id: NodeId) {
        self.driver.crash(id);
        #[cfg(feature = "audit")]
        self.audit_point_gated("after crash (failure injected)");
    }

    /// Revives a crashed node.
    pub fn revive(&mut self, id: NodeId) {
        self.driver.revive(id);
        #[cfg(feature = "audit")]
        self.audit_point_gated("after revive (rejoin begins)");
    }

    /// All insertion latency samples across nodes (µs).
    pub fn insert_latency_samples(&self) -> Vec<SimTime> {
        let mut v = Vec::new();
        for k in 0..self.driver.len() {
            v.extend(self.driver.read(NodeId(k as u32), |n| {
                n.metrics
                    .insert_latencies
                    .iter()
                    .map(|&(_, lat)| lat)
                    .collect::<Vec<_>>()
            }));
        }
        v
    }

    /// All insertion hop counts across nodes.
    pub fn insert_hops(&self) -> Vec<u32> {
        let mut v = Vec::new();
        for k in 0..self.driver.len() {
            v.extend(
                self.driver
                    .read(NodeId(k as u32), |n| n.metrics.insert_hops.clone()),
            );
        }
        v
    }

    /// Primary rows per node for one index (Figure 13's series).
    pub fn storage_distribution(&self, index: &str) -> Vec<u64> {
        (0..self.driver.len())
            .map(|k| {
                let index = index.to_string();
                self.driver.read(NodeId(k as u32), move |n| {
                    n.index_state(&index).map(|s| s.primary_rows()).unwrap_or(0)
                })
            })
            .collect()
    }

    /// Total records stored (primary only) for sanity checks.
    pub fn total_primary_rows(&self, index: &str) -> u64 {
        self.storage_distribution(index).iter().sum()
    }

    /// Approximate stored bytes per node for one index (primary + replica
    /// stores, all versions). Served from the stores' incremental byte
    /// counters, so sampling this every simulated minute stays O(nodes).
    pub fn storage_bytes_distribution(&self, index: &str) -> Vec<u64> {
        (0..self.driver.len())
            .map(|k| {
                let index = index.to_string();
                self.driver.read(NodeId(k as u32), move |n| {
                    n.index_state(&index)
                        .map(|s| s.approx_bytes() as u64)
                        .unwrap_or(0)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_config_has_34_sites() {
        let cfg = ClusterConfig::baseline(1);
        assert_eq!(cfg.sites.len(), 34);
        let cluster = MindCluster::new(cfg);
        assert_eq!(cluster.len(), 34);
    }

    #[test]
    fn planetlab_config_sizes() {
        let cfg = ClusterConfig::planetlab(102, 2);
        assert_eq!(MindCluster::new(cfg).len(), 102);
    }
}
