//! Reliable delivery (DESIGN.md §8) and bounded dedup state (§10).
//!
//! Every tracked `Insert`/`Replica` carries an *op id* (origin node ∥
//! 24-bit counter) and is retried with exponential backoff until acked or
//! the retry budget runs out. Receivers remember applied op ids so a
//! retried copy is re-acked instead of double-stored.
//!
//! The remembered set is **bounded** by a horizon protocol: every outgoing
//! op also carries the origin's *settled horizon* — the counter below
//! which all of its ops are acked or abandoned. A receiver keeps, per
//! origin, only the horizon and the applied counters above it, so its
//! dedup memory is O(origin's in-flight ops), not O(ops ever applied).
//!
//! The horizon's assumption — an origin's counters are monotone — breaks
//! when an origin *process* restarts and counts from zero again: its
//! fresh ops would sit below the remembered horizon and be re-acked as
//! duplicates without ever being applied (silent row loss). The high 40
//! bits of the wire horizon field therefore carry the origin's *boot
//! epoch* ([`crate::node::MindConfig::boot_id`]): a receiver that sees a
//! newer boot resets that origin's dedup memory, and ops from an older
//! boot are stale-incarnation duplicates by definition. Simulated nodes
//! keep the default boot id 0, so sim wire bytes are unchanged.
//!
//! This module owns the retry-class timers: `set_timer` with
//! `KIND_OP_RETRY` must not appear anywhere else in `mind-core` (enforced
//! by the workspace lint wall).

use crate::messages::MindPayload;
use crate::node::{token, MindNode, Out};
use mind_overlay::OverlayMsg;
use mind_types::node::{SimTime, TimerId};
use mind_types::{BitCode, NodeId, Record};
use std::collections::{BTreeMap, BTreeSet};

pub(crate) const KIND_OP_RETRY: u64 = 4;
pub(crate) const KIND_ANTI_ENTROPY: u64 = 6;
/// Age-flush timer for a partially filled wire insert batch.
pub(crate) const KIND_BATCH_FLUSH: u64 = 7;

/// Op-id counters occupy the low 24 bits; the origin node id sits above.
const OP_COUNTER_MASK: u64 = 0xFF_FFFF;

fn op_origin(op_id: u64) -> u64 {
    op_id >> 24
}

fn op_counter(op_id: u64) -> u64 {
    op_id & OP_COUNTER_MASK
}

/// Splits a wire horizon field into (boot epoch, settled counter).
fn split_horizon(field: u64) -> (u64, u64) {
    (field >> 24, field & OP_COUNTER_MASK)
}

/// Where an unacked operation goes when re-sent.
#[derive(Debug, Clone)]
pub(crate) enum OpTarget {
    /// Re-route through the overlay toward a region code (inserts).
    Routed(BitCode),
    /// Re-send directly to a node (replica pushes).
    Direct(NodeId),
}

/// An open origin-side wire batch: records bound for one `(index,
/// version, code)` destination, waiting to fill up or age out (the
/// ingest fast path, DESIGN.md §14). Keyed in `MindNode::wire_batches`
/// by `(index, version, code.len(), code.as_index())`.
#[derive(Debug)]
pub(crate) struct WireBatch {
    /// The routing code every buffered record conformed to.
    code: BitCode,
    /// Buffered records, in origin insert order.
    records: Vec<Record>,
    /// When the *oldest* buffered record was enqueued — becomes the
    /// batch's `sent_at`, so batching delay shows up in insert latency.
    oldest: SimTime,
    /// The armed age-flush timer and its token argument; cancelled (and
    /// the argument's key mapping dropped) when a size flush wins.
    timer: TimerId,
    flush_arg: u64,
}

/// An insert/replica awaiting its ack.
#[derive(Debug)]
pub(crate) struct PendingOp {
    target: OpTarget,
    payload: MindPayload,
    attempts: u32,
    /// The armed retry timer; cancelled when the ack lands.
    timer: TimerId,
}

/// Applied-op memory of one origin: the origin's boot epoch, a settled
/// horizon within that boot, and the applied counters above it.
#[derive(Debug, Default)]
struct OriginSeen {
    boot: u64,
    horizon: u64,
    recent: BTreeSet<u64>,
}

/// The receiver side of op dedup, bounded via the horizon protocol.
#[derive(Debug, Default)]
pub(crate) struct SeenOps {
    by_origin: BTreeMap<u64, OriginSeen>,
}

impl SeenOps {
    /// The single receive-path entry point: folds the op's carried
    /// boot/horizon into this origin's memory, then reports whether the
    /// op was already applied here. `true` means re-ack, don't apply —
    /// either the op is remembered directly, settled at its origin (at or
    /// below the horizon: its origin stopped retrying it, so a fresh copy
    /// can only be a stale duplicate still in flight), or it was sent by
    /// a dead incarnation of the origin (older boot epoch: that process
    /// is gone, nothing retries its ops, so in-flight copies are safe to
    /// drop). A *newer* boot epoch resets the origin's memory — the
    /// restarted process counts from zero again, and its fresh low
    /// counters must not be mistaken for settled old ones.
    pub(crate) fn observe(&mut self, op_id: u64, horizon_field: u64) -> bool {
        let (boot, horizon) = split_horizon(horizon_field);
        let o = self.by_origin.entry(op_origin(op_id)).or_default();
        if boot > o.boot {
            o.boot = boot;
            o.horizon = 0;
            o.recent.clear();
        } else if boot < o.boot {
            return true;
        }
        if horizon > o.horizon {
            o.horizon = horizon;
            o.recent.retain(|&c| c > horizon);
        }
        op_counter(op_id) <= o.horizon || o.recent.contains(&op_counter(op_id))
    }

    /// Re-check under the currently remembered state (the DAC apply-time
    /// guard; the boot/horizon folding already happened on receive).
    pub(crate) fn contains(&self, op_id: u64) -> bool {
        self.by_origin.get(&op_origin(op_id)).is_some_and(|o| {
            op_counter(op_id) <= o.horizon || o.recent.contains(&op_counter(op_id))
        })
    }

    /// Records an applied op.
    pub(crate) fn insert(&mut self, op_id: u64) {
        let o = self.by_origin.entry(op_origin(op_id)).or_default();
        if op_counter(op_id) > o.horizon {
            o.recent.insert(op_counter(op_id));
        }
    }

    /// Number of individually remembered op counters (the bounded part).
    pub(crate) fn len(&self) -> usize {
        self.by_origin.values().map(|o| o.recent.len()).sum()
    }

    /// Forgets everything (crash recovery: the rows died with the stores).
    pub(crate) fn clear(&mut self) {
        self.by_origin.clear();
    }
}

impl MindNode {
    /// A fresh idempotency key, unique per origin (node id ∥ counter,
    /// within the 48-bit timer-argument budget). When the ack/retry
    /// machinery is on, the counter is reserved as live until the op
    /// settles, pinning the horizon below it.
    pub(crate) fn next_op_id(&mut self) -> u64 {
        // Pre-increment: the id 0 is reserved as the "no tracking" sentinel
        // (node 0's op 0 would otherwise collide with it and lose dedup).
        self.op_seq += 1;
        let id =
            (((self.id().0 as u64) << 24) | (self.op_seq & OP_COUNTER_MASK)) & 0xFFFF_FFFF_FFFF;
        if self.cfg.retry_timeout > 0 {
            self.live_op_counters.insert(op_counter(id));
        }
        id
    }

    /// This node's wire horizon field: the boot epoch in the high bits,
    /// and below it the settled-op horizon — every counter at or below it
    /// is acked or abandoned. With retries off no op ever settles, so no
    /// counter is claimed (the boot epoch still travels).
    pub(crate) fn op_horizon(&self) -> u64 {
        let boot = (self.cfg.boot_id & 0xFF_FFFF_FFFF) << 24;
        if self.cfg.retry_timeout == 0 {
            return boot;
        }
        let settled = match self.live_op_counters.first() {
            Some(&min) => min - 1,
            None => self.op_seq & OP_COUNTER_MASK,
        };
        boot | (settled & OP_COUNTER_MASK)
    }

    /// Re-stamps the horizon carried by an op about to be (re)sent.
    pub(crate) fn stamp_horizon(payload: &mut MindPayload, horizon: u64) {
        if let MindPayload::Insert { horizon: h, .. }
        | MindPayload::InsertBatch { horizon: h, .. }
        | MindPayload::Replica { horizon: h, .. }
        | MindPayload::ReplicaBatch { horizon: h, .. } = payload
        {
            *h = horizon;
        }
    }

    /// Marks an op settled (acked or abandoned), letting the horizon
    /// advance past it.
    fn settle_op(&mut self, op_id: u64) {
        self.live_op_counters.remove(&op_counter(op_id));
    }

    // ---- origin-side wire batching (the ingest fast path, DESIGN.md §14) ----

    /// Buffers one conformed record into the wire batch for its `(index,
    /// version, code)` destination; ships the batch when it reaches
    /// `insert_batch_max` records (the first record also arms an age
    /// flush, so stragglers never wait forever). Only called when
    /// batching is enabled (`insert_batch_max > 1`).
    pub(crate) fn buffer_wire_insert(
        &mut self,
        now: SimTime,
        index: String,
        version: u32,
        code: BitCode,
        record: Record,
        out: &mut Out,
    ) {
        let key = (index, version, code.len(), code.as_index());
        let max = self.cfg.insert_batch_max;
        let full = if let Some(open) = self.wire_batches.get_mut(&key) {
            open.records.push(record);
            open.records.len() >= max
        } else {
            let flush_arg = self.wire_batch_seq & 0xFFFF_FFFF_FFFF;
            self.wire_batch_seq += 1;
            let timer = out.set_timer(
                self.cfg.insert_batch_age,
                token(KIND_BATCH_FLUSH, flush_arg),
            );
            self.wire_batch_keys.insert(flush_arg, key.clone());
            let mut records = Vec::with_capacity(max);
            records.push(record);
            self.wire_batches.insert(
                key.clone(),
                WireBatch {
                    code,
                    records,
                    oldest: now,
                    timer,
                    flush_arg,
                },
            );
            // `max > 1` whenever the batcher is active, so a fresh
            // single-record batch is never already full.
            false
        };
        if full {
            if let Some(batch) = self.wire_batches.remove(&key) {
                self.wire_batch_keys.remove(&batch.flush_arg);
                out.cancel_timer(batch.timer);
                self.ship_wire_batch(now, key.0, key.1, batch, out);
            }
        }
    }

    /// Sends one closed wire batch toward its region owner under a single
    /// fresh op id: a one-record straggler degenerates to a plain
    /// `Insert` (no batch framing overhead), anything larger leaves as an
    /// `InsertBatch`.
    fn ship_wire_batch(
        &mut self,
        now: SimTime,
        index: String,
        version: u32,
        batch: WireBatch,
        out: &mut Out,
    ) {
        let WireBatch {
            code,
            mut records,
            oldest,
            ..
        } = batch;
        let op_id = self.next_op_id();
        // Horizon read *after* reserving the op's counter, so the payload
        // never claims its own op as settled.
        let horizon = self.op_horizon();
        let payload = if records.len() > 1 {
            self.metrics.insert_batches_sent += 1;
            MindPayload::InsertBatch {
                index,
                version,
                records,
                origin: self.id(),
                sent_at: oldest,
                op_id,
                horizon,
            }
        } else if let Some(record) = records.pop() {
            MindPayload::Insert {
                index,
                version,
                record,
                origin: self.id(),
                sent_at: oldest,
                op_id,
                horizon,
            }
        } else {
            // Batches are created non-empty; nothing to ship.
            self.settle_op(op_id);
            return;
        };
        self.track_op(op_id, OpTarget::Routed(code), payload.clone(), out);
        let events = self.overlay.route(now, code, payload, out);
        self.process_events(now, events, out);
    }

    /// Age-flush timer fired: ship the batch the argument maps to, if a
    /// size flush has not already claimed it.
    fn flush_wire_batch(&mut self, now: SimTime, flush_arg: u64, out: &mut Out) {
        if let Some(key) = self.wire_batch_keys.remove(&flush_arg) {
            if let Some(batch) = self.wire_batches.remove(&key) {
                self.ship_wire_batch(now, key.0, key.1, batch, out);
            }
        }
    }

    /// Force-ships every open wire batch immediately (deterministic key
    /// order). Lets drivers drain buffered inserts without waiting out
    /// the age timers — a no-op when batching is off.
    pub fn flush_inserts(&mut self, now: SimTime, out: &mut Out) {
        while let Some((key, batch)) = self.wire_batches.pop_first() {
            self.wire_batch_keys.remove(&batch.flush_arg);
            out.cancel_timer(batch.timer);
            self.ship_wire_batch(now, key.0, key.1, batch, out);
        }
    }

    /// Records currently buffered in open wire batches (not yet sent).
    pub fn buffered_inserts(&self) -> usize {
        self.wire_batches.values().map(|b| b.records.len()).sum()
    }

    /// Registers an operation for ack tracking and arms its retry timer.
    pub(crate) fn track_op(
        &mut self,
        op_id: u64,
        target: OpTarget,
        payload: MindPayload,
        out: &mut Out,
    ) {
        if self.cfg.retry_timeout == 0 {
            return;
        }
        let timer = out.set_timer(self.cfg.retry_timeout, token(KIND_OP_RETRY, op_id));
        self.pending_ops.insert(
            op_id,
            PendingOp {
                target,
                payload,
                attempts: 0,
                timer,
            },
        );
    }

    /// Re-sends an unacked operation, with exponential backoff, until the
    /// retry budget runs out (then the op is abandoned and settles).
    fn retry_op(&mut self, now: SimTime, op_id: u64, out: &mut Out) {
        let horizon = self.op_horizon();
        let max_retries = self.cfg.max_retries;
        let retry_timeout = self.cfg.retry_timeout;
        let Some(op) = self.pending_ops.get_mut(&op_id) else {
            return; // acked in the meantime
        };
        if op.attempts >= max_retries {
            self.pending_ops.remove(&op_id);
            self.settle_op(op_id);
            self.metrics.retries_exhausted += 1;
            return;
        }
        op.attempts += 1;
        let attempts = op.attempts;
        // Re-arm before re-sending, so a synchronous local ack on the
        // resend path cancels the *new* timer.
        op.timer = out.set_timer(
            retry_timeout << attempts.min(6),
            token(KIND_OP_RETRY, op_id),
        );
        let mut payload = op.payload.clone();
        Self::stamp_horizon(&mut payload, horizon);
        let target = op.target.clone();
        self.metrics.retries_sent += 1;
        match target {
            OpTarget::Routed(code) => {
                let events = self.overlay.route(now, code, payload, out);
                self.process_events(now, events, out);
            }
            OpTarget::Direct(node) => out.send(node, OverlayMsg::Direct { payload }),
        }
    }

    /// Handles a received (or loopback) ack: settles the op and cancels
    /// its pending retry timer.
    pub(crate) fn on_ack(&mut self, op_id: u64, out: &mut Out) {
        if let Some(op) = self.pending_ops.remove(&op_id) {
            self.settle_op(op_id);
            self.metrics.acks_received += 1;
            out.cancel_timer(op.timer);
        }
    }

    /// Queues an `Ack` for direct delivery (loopback-safe).
    pub(crate) fn send_ack(&mut self, to: NodeId, op_id: u64, out: &mut Out) {
        if to == self.id() {
            self.on_ack(op_id, out);
        } else {
            out.send(
                to,
                OverlayMsg::Direct {
                    payload: MindPayload::Ack { op_id },
                },
            );
        }
    }

    /// Arms the recurring anti-entropy timer (called from `on_start`).
    pub(crate) fn arm_anti_entropy(&mut self, out: &mut Out) {
        if self.cfg.anti_entropy_interval > 0 {
            out.set_timer(self.cfg.anti_entropy_interval, token(KIND_ANTI_ENTROPY, 0));
        }
    }

    /// Periodically reconciles the index/trigger catalog with one neighbor
    /// (round-robin): heals CreateIndex/NewVersion/CreateTrigger floods
    /// lost to the network, since CatalogResponse installation is
    /// idempotent. The tick sends the local catalog *digest* (12 wire
    /// bytes); the peer ships its full catalog back only on mismatch, so
    /// a converged overlay pays O(1) bytes per node per tick instead of
    /// re-cloning every schema and cut tree (DESIGN.md §16). Healing is
    /// symmetric across two tick directions: whichever side is behind
    /// receives the full catalog when the *other* side's digest arrives.
    fn anti_entropy_tick(&mut self, out: &mut Out) {
        let peers = self.overlay.all_neighbor_targets();
        if !peers.is_empty() {
            let pick = peers[(self.anti_entropy_rr as usize) % peers.len()];
            self.anti_entropy_rr += 1;
            let digest = self.catalog_digest();
            self.metrics.catalog_digests_sent += 1;
            out.send(
                pick,
                OverlayMsg::Direct {
                    payload: MindPayload::CatalogDigest { digest },
                },
            );
        }
        self.arm_anti_entropy(out);
    }

    /// Dedup state size: individually remembered applied-op counters
    /// across all origins. Bounded by the senders' in-flight ops — the
    /// chaos suite asserts this stays flat under churn.
    pub fn seen_ops_len(&self) -> usize {
        self.seen_ops.len()
    }

    /// Operations awaiting their ack.
    pub fn pending_ops_len(&self) -> usize {
        self.pending_ops.len()
    }

    /// Handles reliability-class timers; `true` if `kind` was ours.
    pub(crate) fn handle_reliability_timer(
        &mut self,
        now: SimTime,
        kind: u64,
        arg: u64,
        out: &mut Out,
    ) -> bool {
        match kind {
            KIND_OP_RETRY => self.retry_op(now, arg, out),
            KIND_ANTI_ENTROPY => self.anti_entropy_tick(out),
            KIND_BATCH_FLUSH => self.flush_wire_batch(now, arg, out),
            _ => return false,
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(origin: u64, counter: u64) -> u64 {
        (origin << 24) | counter
    }

    fn hz(boot: u64, settled: u64) -> u64 {
        (boot << 24) | settled
    }

    #[test]
    fn seen_ops_dedups_and_bounds() {
        let mut s = SeenOps::default();
        assert!(!s.observe(id(7, 3), hz(0, 0)));
        s.insert(id(7, 3));
        s.insert(id(7, 4));
        assert!(s.observe(id(7, 3), hz(0, 0)));
        assert_eq!(s.len(), 2);
        // Horizon 4 settles both; the memory is reclaimed but the ops
        // still read as seen.
        assert!(!s.observe(id(7, 5), hz(0, 4)));
        assert_eq!(s.len(), 0);
        assert!(s.observe(id(7, 3), hz(0, 4)));
        assert!(s.observe(id(7, 4), hz(0, 4)));
        assert!(!s.observe(id(7, 5), hz(0, 4)));
    }

    #[test]
    fn horizons_are_per_origin_and_monotonic() {
        let mut s = SeenOps::default();
        assert!(s.observe(id(1, 5), hz(0, 8)));
        assert!(!s.observe(id(2, 5), hz(0, 0)));
        // A stale (lower) horizon never regresses.
        assert!(s.observe(id(1, 8), hz(0, 3)));
        // Counters above the horizon are only seen if remembered.
        s.insert(id(1, 12));
        assert!(s.observe(id(1, 12), hz(0, 8)));
        assert!(!s.observe(id(1, 11), hz(0, 8)));
    }

    #[test]
    fn unknown_origin_is_never_seen() {
        let s = SeenOps::default();
        assert!(!s.contains(id(42, 1)));
    }

    #[test]
    fn newer_boot_resets_origin_memory() {
        let mut s = SeenOps::default();
        // Boot 100: counters up to 50 settled, 60 applied and remembered.
        assert!(!s.observe(id(3, 60), hz(100, 50)));
        s.insert(id(3, 60));
        assert!(s.observe(id(3, 42), hz(100, 50)));
        assert!(s.observe(id(3, 60), hz(100, 50)));
        // The origin restarts (boot 101) and counts from zero again: its
        // low fresh counters must NOT read as settled old ones.
        assert!(!s.observe(id(3, 1), hz(101, 0)));
        s.insert(id(3, 1));
        assert_eq!(s.len(), 1);
        // Its own retries still dedup within the new boot.
        assert!(s.observe(id(3, 1), hz(101, 0)));
        // A straggler from the dead incarnation is a stale duplicate.
        assert!(s.observe(id(3, 61), hz(100, 50)));
    }
}
