//! Bridges a live [`MindCluster`] to the `mind-audit` invariant auditor.
//!
//! [`MindCluster::audit_snapshot`] captures a plain-data
//! [`mind_audit::Snapshot`] of the whole deployment — overlay codes, claimed
//! regions, neighbor tables, replica targets and every index version's cut
//! tree — through the cluster's read-only accessors, so capturing never
//! perturbs the simulation.
//!
//! With the `audit` cargo feature enabled, every state-changing cluster
//! operation (time advance, crash, revive, index creation, version GC)
//! re-runs the structural invariants and panics on the first violation,
//! naming the audit point. The feature is off by default because the audit
//! is O(nodes² + leaves²) per call; tests and debugging sessions opt in with
//! `cargo test --features audit`.

use mind_audit::{
    AuditReport, Auditor, IndexSnapshot, NeighborSnapshot, NodeSnapshot, ReplicationSnapshot,
    Snapshot, VersionSnapshot,
};
use mind_types::{ClusterDriver, NodeId};

use mind_netsim::World;

use crate::cluster::MindCluster;
use crate::messages::Replication;
use crate::node::MindNode;

/// Captures the audited state of every node in a raw simulation world.
///
/// Tests that drive a [`World<MindNode>`] directly (dynamic join, custom
/// topologies) audit through this; [`MindCluster::audit_snapshot`] is the
/// cluster-level convenience over it.
pub fn snapshot_world(world: &World<MindNode>) -> Snapshot {
    let mut nodes = Vec::with_capacity(world.len());
    for k in 0..world.len() {
        let id = NodeId(k as u32);
        let node = world.node(id);
        nodes.push(snapshot_node(id, world.is_alive(id), node));
    }
    Snapshot {
        now: world.now(),
        nodes,
    }
}

impl<D: ClusterDriver<MindNode>> MindCluster<D> {
    /// Captures the audited state of every node, dead or alive.
    pub fn audit_snapshot(&self) -> Snapshot {
        let mut nodes = Vec::with_capacity(self.len());
        for k in 0..self.len() {
            let id = NodeId(k as u32);
            let alive = self.is_alive(id);
            nodes.push(self.read_node(id, move |n| snapshot_node(id, alive, n)));
        }
        Snapshot {
            now: self.now(),
            nodes,
        }
    }

    /// Runs the full invariant catalog; the cluster must be quiescent
    /// (joins, failure detection and takeovers settled).
    pub fn audit_settled(&self) -> AuditReport {
        Auditor::settled().audit(&self.audit_snapshot())
    }

    /// Runs only the invariants that hold at every instant, even mid-churn.
    pub fn audit_structural(&self) -> AuditReport {
        Auditor::structural().audit(&self.audit_snapshot())
    }

    /// Audit point: panics on any structural violation, naming `context`.
    ///
    /// Called by the cluster's state-changing operations when the `audit`
    /// feature is enabled; also useful directly from tests.
    pub fn audit_point(&self, context: &str) {
        self.audit_structural().assert_clean(context);
    }
}

/// Extracts one node's audited state.
///
/// Public so the real-transport runtime's control server can assemble a
/// fleet-wide [`Snapshot`] from per-process node snapshots.
pub fn snapshot_node(id: NodeId, alive: bool, node: &MindNode) -> NodeSnapshot {
    let overlay = node.overlay();
    let mut snap = NodeSnapshot::new(id);
    snap.alive = alive;
    snap.member = overlay.is_member();
    snap.code = overlay.code();
    snap.claimed = overlay.claimed().iter().copied().collect();
    snap.neighbors = overlay
        .table()
        .iter()
        .enumerate()
        .map(|(dim, e)| NeighborSnapshot {
            dim: dim as u8,
            code: e.code,
            node: e.node,
            alive: e.alive,
        })
        .collect();
    snap.extras = overlay.table().extra_nodes();

    for tag in node.index_tags() {
        let Some(state) = node.index_state(&tag) else {
            continue;
        };
        let (replication, replica_targets) = match state.replication {
            Replication::None => (ReplicationSnapshot::None, Vec::new()),
            Replication::Level(m) => (
                ReplicationSnapshot::Level(m),
                overlay.replica_targets(m.into()),
            ),
            Replication::Full => (ReplicationSnapshot::Full, overlay.all_neighbor_targets()),
        };
        let versions = state
            .versions
            .iter()
            .map(|v| VersionSnapshot {
                from_ts: v.from_ts,
                bounds: v.cuts.bounds().clone(),
                leaves: v.cuts.leaves(),
                primary_rows: v.primary_rows,
                replica_rows: v.replica_rows,
            })
            .collect();
        snap.indexes.insert(
            tag,
            IndexSnapshot {
                replication,
                replica_targets,
                versions,
            },
        );
    }
    snap
}
