//! Bridges a live [`MindCluster`] to the `mind-audit` invariant auditor.
//!
//! [`MindCluster::audit_snapshot`] captures a plain-data
//! [`mind_audit::Snapshot`] of the whole deployment — overlay codes, claimed
//! regions, neighbor tables, replica targets and every index version's cut
//! tree — through the cluster's read-only accessors, so capturing never
//! perturbs the simulation.
//!
//! With the `audit` cargo feature enabled, every state-changing cluster
//! operation (time advance, crash, revive, index creation, version GC)
//! re-runs the structural invariants and panics on the first violation,
//! naming the audit point. The feature is off by default because the audit
//! is O(nodes² + leaves²) per call; tests and debugging sessions opt in with
//! `cargo test --features audit`.

use mind_audit::{
    AuditReport, Auditor, IndexSnapshot, NeighborSnapshot, NodeSnapshot, ReplicationSnapshot,
    Snapshot, VersionSnapshot,
};
use mind_types::{ClusterDriver, NodeId};

use mind_netsim::World;

use crate::cluster::MindCluster;
use crate::messages::Replication;
use crate::node::MindNode;

/// Audit cadence from `MIND_AUDIT_EVERY`: the automatic audit points run
/// the structural audit only at every k-th trigger. The default `1`
/// keeps today's audit-every-event behavior (what the `--features audit`
/// test suite pins); large-world benchmarks set it high because each
/// audit walks the entire deployment — O(nodes² + leaves²) — after
/// every membership event.
pub fn audit_every_from_env() -> u64 {
    audit_every_from_lookup(|name| std::env::var(name).ok())
}

/// [`audit_every_from_env`] with an injectable variable lookup, so the
/// malformed-input paths are testable without mutating the process
/// environment (env vars are global state across test threads).
fn audit_every_from_lookup(lookup: impl Fn(&str) -> Option<String>) -> u64 {
    const NAME: &str = "MIND_AUDIT_EVERY";
    match lookup(NAME) {
        None => 1,
        Some(s) => match s.parse::<u64>() {
            // Every k-th audit point; 0 would mean "never", which is
            // spelled by not enabling the audit feature instead.
            Ok(k) if k >= 1 => k,
            _ => {
                eprintln!("warning: ignoring malformed {NAME}={s:?}; using 1");
                1
            }
        },
    }
}

/// Captures the audited state of every node in a raw simulation world.
///
/// Tests that drive a [`World<MindNode>`] directly (dynamic join, custom
/// topologies) audit through this; [`MindCluster::audit_snapshot`] is the
/// cluster-level convenience over it.
pub fn snapshot_world(world: &World<MindNode>) -> Snapshot {
    let mut nodes = Vec::with_capacity(world.len());
    for k in 0..world.len() {
        let id = NodeId(k as u32);
        let node = world.node(id);
        nodes.push(snapshot_node(id, world.is_alive(id), node));
    }
    Snapshot {
        now: world.now(),
        nodes,
    }
}

impl<D: ClusterDriver<MindNode>> MindCluster<D> {
    /// Captures the audited state of every node, dead or alive.
    pub fn audit_snapshot(&self) -> Snapshot {
        let mut nodes = Vec::with_capacity(self.len());
        for k in 0..self.len() {
            let id = NodeId(k as u32);
            let alive = self.is_alive(id);
            nodes.push(self.read_node(id, move |n| snapshot_node(id, alive, n)));
        }
        Snapshot {
            now: self.now(),
            nodes,
        }
    }

    /// Runs the full invariant catalog; the cluster must be quiescent
    /// (joins, failure detection and takeovers settled).
    pub fn audit_settled(&self) -> AuditReport {
        Auditor::settled().audit(&self.audit_snapshot())
    }

    /// Runs only the invariants that hold at every instant, even mid-churn.
    pub fn audit_structural(&self) -> AuditReport {
        Auditor::structural().audit(&self.audit_snapshot())
    }

    /// Audit point: panics on any structural violation, naming `context`.
    ///
    /// Called by the cluster's state-changing operations when the `audit`
    /// feature is enabled; also useful directly from tests.
    pub fn audit_point(&self, context: &str) {
        self.audit_structural().assert_clean(context);
    }

    /// Cadence-gated audit point: counts every trigger and runs the full
    /// audit only at every `MIND_AUDIT_EVERY`-th one (default 1 = every
    /// trigger). This is what the automatic audit points inside
    /// `run_for`/`crash`/`revive`/... call, so a 10k-node world under
    /// churn does not pay a whole-world walk per membership event.
    #[cfg(feature = "audit")]
    pub fn audit_point_gated(&self, context: &str) {
        let t = self.audit_ticks.get() + 1;
        self.audit_ticks.set(t);
        if t % self.audit_every == 0 {
            self.audit_point(context);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_cadence_parses_like_the_other_env_knobs() {
        assert_eq!(audit_every_from_lookup(|_| None), 1);
        assert_eq!(audit_every_from_lookup(|_| Some("64".into())), 64);
        // Malformed or senseless values warn and fall back to every-event.
        assert_eq!(audit_every_from_lookup(|_| Some("0".into())), 1);
        assert_eq!(audit_every_from_lookup(|_| Some("-3".into())), 1);
        assert_eq!(audit_every_from_lookup(|_| Some("often".into())), 1);
        assert_eq!(audit_every_from_lookup(|_| Some("".into())), 1);
    }
}

/// Extracts one node's audited state.
///
/// Public so the real-transport runtime's control server can assemble a
/// fleet-wide [`Snapshot`] from per-process node snapshots.
pub fn snapshot_node(id: NodeId, alive: bool, node: &MindNode) -> NodeSnapshot {
    let overlay = node.overlay();
    let mut snap = NodeSnapshot::new(id);
    snap.alive = alive;
    snap.member = overlay.is_member();
    snap.code = overlay.code();
    snap.claimed = overlay.claimed().iter().copied().collect();
    snap.neighbors = overlay
        .table()
        .iter()
        .enumerate()
        .map(|(dim, e)| NeighborSnapshot {
            dim: dim as u8,
            code: e.code,
            node: e.node,
            alive: e.alive,
        })
        .collect();
    snap.extras = overlay.table().extra_nodes();

    for tag in node.index_tags() {
        let Some(state) = node.index_state(&tag) else {
            continue;
        };
        let (replication, replica_targets) = match state.replication {
            Replication::None => (ReplicationSnapshot::None, Vec::new()),
            Replication::Level(m) => (
                ReplicationSnapshot::Level(m),
                overlay.replica_targets(m.into()),
            ),
            Replication::Full => (ReplicationSnapshot::Full, overlay.all_neighbor_targets()),
        };
        let versions = state
            .versions
            .iter()
            .map(|v| VersionSnapshot {
                from_ts: v.from_ts,
                bounds: v.cuts.bounds().clone(),
                leaves: v.cuts.leaves(),
                primary_rows: v.primary_rows,
                replica_rows: v.replica_rows,
            })
            .collect();
        snap.indexes.insert(
            tag,
            IndexSnapshot {
                replication,
                replica_targets,
                versions,
            },
        );
    }
    snap
}
