//! Standing queries (triggers).
//!
//! Footnote 1 of the paper: *"triggers can just as easily be supported in
//! our system, with minor mechanistic modifications"* — and the
//! conclusion envisions MIND as a component of an **on-line** anomaly
//! detection system. This module supplies that modification: a trigger is
//! a registered hyper-rectangle (plus optional carried-attribute filters);
//! every node checks newly stored primary records against its installed
//! triggers and notifies the subscribing node directly the moment one
//! matches.
//!
//! Triggers are installed by flooding (like index creation), so they stay
//! correct as regions move between nodes during failures and takeovers —
//! whichever node ends up storing a matching record fires the trigger.

use crate::messages::CarriedFilter;
use mind_types::{HyperRect, NodeId, Record};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One standing query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trigger {
    /// Unique id (origin node + sequence).
    pub trigger_id: u64,
    /// Index the trigger watches.
    pub index: String,
    /// Fires for records whose indexed point falls in this rectangle.
    pub rect: HyperRect,
    /// Additional carried-attribute filters.
    pub filters: Vec<CarriedFilter>,
    /// Where notifications are sent.
    pub origin: NodeId,
}

impl Trigger {
    /// `true` if a (conformed) record fires this trigger.
    pub fn matches(&self, record: &Record, indexed_dims: usize) -> bool {
        self.rect.contains_point(record.point(indexed_dims))
            && self.filters.iter().all(|f| f.accepts(record))
    }
}

/// The per-node registry of installed triggers.
#[derive(Debug, Default)]
pub struct TriggerSet {
    by_index: BTreeMap<String, Vec<Trigger>>,
}

impl TriggerSet {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or re-installs, idempotently) a trigger.
    pub fn install(&mut self, t: Trigger) {
        let list = self.by_index.entry(t.index.clone()).or_default();
        if !list.iter().any(|x| x.trigger_id == t.trigger_id) {
            list.push(t);
        }
    }

    /// Removes a trigger everywhere it appears.
    pub fn remove(&mut self, trigger_id: u64) {
        for list in self.by_index.values_mut() {
            list.retain(|t| t.trigger_id != trigger_id);
        }
    }

    /// Drops all triggers of an index (the index was dropped).
    pub fn remove_index(&mut self, index: &str) {
        self.by_index.remove(index);
    }

    /// The triggers fired by a newly stored record; returns
    /// `(trigger_id, origin)` pairs.
    pub fn fired(&self, index: &str, record: &Record, indexed_dims: usize) -> Vec<(u64, NodeId)> {
        self.by_index
            .get(index)
            .map(|list| {
                list.iter()
                    .filter(|t| t.matches(record, indexed_dims))
                    .map(|t| (t.trigger_id, t.origin))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All installed triggers (catalog transfer to fresh joiners).
    pub fn all(&self) -> Vec<Trigger> {
        self.by_index.values().flatten().cloned().collect()
    }

    /// Number of installed triggers.
    pub fn len(&self) -> usize {
        self.by_index.values().map(Vec::len).sum()
    }

    /// `true` when no triggers are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trig(id: u64, lo: u64, hi: u64) -> Trigger {
        Trigger {
            trigger_id: id,
            index: "i".into(),
            rect: HyperRect::new(vec![lo, 0], vec![hi, 100]),
            filters: vec![],
            origin: NodeId(7),
        }
    }

    #[test]
    fn fires_only_in_rect() {
        let mut s = TriggerSet::new();
        s.install(trig(1, 10, 20));
        assert_eq!(
            s.fired("i", &Record::new(vec![15, 5, 99]), 2),
            vec![(1, NodeId(7))]
        );
        assert!(s.fired("i", &Record::new(vec![25, 5, 99]), 2).is_empty());
        assert!(s
            .fired("other", &Record::new(vec![15, 5, 99]), 2)
            .is_empty());
    }

    #[test]
    fn filters_apply() {
        let mut s = TriggerSet::new();
        let mut t = trig(2, 0, 100);
        t.filters.push(CarriedFilter {
            attr: 2,
            lo: 50,
            hi: 60,
        });
        s.install(t);
        assert!(
            s.fired("i", &Record::new(vec![5, 5, 10]), 2).is_empty(),
            "filter must reject"
        );
        assert_eq!(s.fired("i", &Record::new(vec![5, 5, 55]), 2).len(), 1);
    }

    #[test]
    fn install_idempotent_remove_works() {
        let mut s = TriggerSet::new();
        s.install(trig(3, 0, 100));
        s.install(trig(3, 0, 100)); // re-flooded
        assert_eq!(s.len(), 1);
        s.remove(3);
        assert!(s.is_empty());
    }

    #[test]
    fn multiple_triggers_can_fire_for_one_record() {
        let mut s = TriggerSet::new();
        s.install(trig(1, 0, 50));
        s.install(trig(2, 40, 100));
        let fired = s.fired("i", &Record::new(vec![45, 0, 0]), 2);
        assert_eq!(fired.len(), 2);
    }

    #[test]
    fn remove_index_clears() {
        let mut s = TriggerSet::new();
        s.install(trig(1, 0, 50));
        s.remove_index("i");
        assert!(s.is_empty());
    }
}
