//! The Data Access Component (Section 3.9): the batched storage queue
//! that models the prototype's MySQL + JDBC backend.
//!
//! Requests (inserts, replica writes, sub-query scans) are buffered and
//! processed in batches; a batch's effects — acks, replica pushes, query
//! responses — are released only when its modeled processing cost has
//! elapsed, so storage work is never interleaved with network
//! transmission, exactly as in the prototype.

use crate::messages::{CarriedFilter, MindPayload, Replication};
use crate::node::{token, MindNode, Out};
use crate::reliability::OpTarget;
use mind_overlay::OverlayMsg;
use mind_types::node::SimTime;
use mind_types::{BitCode, HyperRect, NodeId, Record};
use std::sync::Arc;

pub(crate) const KIND_DAC_TICK: u64 = 0;
pub(crate) const KIND_BATCH: u64 = 1;

/// One buffered storage request (the prototype's DAC queue entry).
#[derive(Debug)]
pub(crate) enum DacJob {
    Insert {
        index: String,
        version: u32,
        record: Record,
        sent_at: SimTime,
        is_replica: bool,
        /// Who to ack once applied (the insert origin, or the pushing
        /// primary for replica copies).
        acker: NodeId,
        /// Idempotency key (0 = legacy/unacked operation).
        op_id: u64,
    },
    /// A whole wire batch applied under one op id: all records store (and
    /// ack) together or not at all, so a retried batch can never be half
    /// deduped.
    InsertBatch {
        index: String,
        version: u32,
        records: Vec<Record>,
        sent_at: SimTime,
        is_replica: bool,
        acker: NodeId,
        op_id: u64,
    },
    Scan {
        query_id: u64,
        index: String,
        version: u32,
        code: BitCode,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
        origin: NodeId,
    },
}

/// Effects of a processed batch, released when its cost has elapsed.
#[derive(Debug, Default)]
pub(crate) struct BatchResult {
    sends: Vec<(NodeId, MindPayload)>,
    /// Query responses still carrying shared record handles. Kept out of
    /// `sends` so the local path (destination == this node) can feed the
    /// tracker directly; payloads are materialized into wire records only
    /// when the response actually leaves the node.
    responses: Vec<(NodeId, LocalResponse)>,
    /// `sent_at` of each primary insert in the batch (latency recorded at
    /// release time).
    insert_sent_ats: Vec<SimTime>,
}

/// A query response before the wire boundary: records are refcounted
/// handles into the local store, not copies.
#[derive(Debug)]
pub(crate) struct LocalResponse {
    pub(crate) query_id: u64,
    pub(crate) version: u32,
    pub(crate) code: BitCode,
    pub(crate) records: Vec<Arc<Record>>,
}

/// A sub-query waiting for the acceptor's historical records.
#[derive(Debug)]
pub(crate) struct PendingHandoff {
    pub(crate) query_id: u64,
    pub(crate) version: u32,
    pub(crate) code: BitCode,
    pub(crate) origin: NodeId,
    pub(crate) local: Vec<Arc<Record>>,
}

impl MindNode {
    pub(crate) fn enqueue(&mut self, _now: SimTime, job: DacJob, out: &mut Out) {
        self.dac_queue.push_back(job);
        if !self.dac_busy {
            self.dac_busy = true;
            out.set_timer(1, token(KIND_DAC_TICK, 0));
        }
    }

    /// Buffers a region scan for the DAC (the query track's entry point
    /// into the storage queue).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn enqueue_scan(
        &mut self,
        now: SimTime,
        query_id: u64,
        index: String,
        version: u32,
        code: BitCode,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
        origin: NodeId,
        out: &mut Out,
    ) {
        self.enqueue(
            now,
            DacJob::Scan {
                query_id,
                index,
                version,
                code,
                rect,
                filters,
                origin,
            },
            out,
        );
    }

    fn dac_tick(&mut self, now: SimTime, out: &mut Out) {
        if self.dac_queue.is_empty() {
            self.dac_busy = false;
            return;
        }
        let cost_model = self.cfg.dac_cost;
        let mut cost: SimTime = cost_model.batch_overhead;
        let mut result = BatchResult::default();
        for _ in 0..self.cfg.dac_batch_size {
            let Some(job) = self.dac_queue.pop_front() else {
                break;
            };
            match job {
                DacJob::Insert {
                    index,
                    version,
                    record,
                    sent_at,
                    is_replica,
                    acker,
                    op_id,
                } => {
                    cost += cost_model.per_insert;
                    let applied = self.apply_insert(
                        &index,
                        version,
                        record,
                        is_replica,
                        acker,
                        op_id,
                        &mut result,
                    );
                    if applied && !is_replica {
                        result.insert_sent_ats.push(sent_at);
                    }
                }
                DacJob::InsertBatch {
                    index,
                    version,
                    records,
                    sent_at,
                    is_replica,
                    acker,
                    op_id,
                } => {
                    // The wire frame was amortized; the storage work was
                    // not — every record still costs a row write.
                    cost += cost_model.per_insert * records.len() as SimTime;
                    let applied = self.apply_insert_batch(
                        &index,
                        version,
                        records,
                        is_replica,
                        acker,
                        op_id,
                        &mut result,
                    );
                    if !is_replica {
                        // One latency sample per record: they all left the
                        // origin in one frame stamped with the oldest
                        // record's enqueue time.
                        for _ in 0..applied {
                            result.insert_sent_ats.push(sent_at);
                        }
                    }
                }
                DacJob::Scan {
                    query_id,
                    index,
                    version,
                    code,
                    rect,
                    filters,
                    origin,
                } => {
                    let records = self.run_scan(&index, version, &code, &rect, &filters, false);
                    cost += cost_model.per_query + cost_model.per_result * records.len() as SimTime;
                    self.metrics.subqueries_answered += 1;
                    // Fresh joiner: the region's historical rows still live
                    // at the acceptor (Section 3.4). Merge its answer with
                    // ours before responding.
                    if let Some((sibling, joined_at)) = self.handoff {
                        if now.saturating_sub(joined_at) < self.cfg.handoff_ttl {
                            let handoff_id = self.handoff_seq;
                            self.handoff_seq += 1;
                            self.pending_handoffs.insert(
                                handoff_id,
                                PendingHandoff {
                                    query_id,
                                    version,
                                    code,
                                    origin,
                                    local: records,
                                },
                            );
                            result.sends.push((
                                sibling,
                                MindPayload::HandoffScan {
                                    handoff_id,
                                    index,
                                    version,
                                    code,
                                    rect,
                                    filters,
                                },
                            ));
                            continue;
                        }
                        self.handoff = None; // aged out
                    }
                    result.responses.push((
                        origin,
                        LocalResponse {
                            query_id,
                            version,
                            code,
                            records,
                        },
                    ));
                }
            }
        }
        let batch_id = self.batch_seq;
        self.batch_seq += 1;
        self.pending_batches.insert(batch_id, result);
        // Results (and the next batch) are released when this batch's
        // processing time has elapsed — storage work is not interleaved
        // with network transmission, exactly as in the prototype.
        out.set_timer(cost.max(1), token(KIND_BATCH, batch_id));
    }

    /// Applies one insert (primary or replica). Returns `true` when the
    /// record was actually stored. The ack is emitted *only* on success
    /// or on a detected duplicate — an insert that cannot be applied yet
    /// (index/version unknown here, e.g. a lost flood) stays unacked so
    /// the origin's retry can land once the catalog heals.
    #[allow(clippy::too_many_arguments)]
    fn apply_insert(
        &mut self,
        index: &str,
        version: u32,
        record: Record,
        is_replica: bool,
        acker: NodeId,
        op_id: u64,
        result: &mut BatchResult,
    ) -> bool {
        if op_id != 0 && self.seen_ops.contains(op_id) {
            // A duplicate that slipped into the queue behind the first
            // copy (network duplication or an early retry): ack, don't
            // double-store.
            self.metrics.dup_ops_ignored += 1;
            result.sends.push((acker, MindPayload::Ack { op_id }));
            return false;
        }
        let Some(state) = self.indexes.get_mut(index) else {
            return false;
        };
        let dims = state.schema.indexed_dims;
        let replication = state.replication;
        if state.version_mut(version).is_none() {
            return false;
        }
        if !is_replica {
            state.day_histogram.add(record.point(dims));
            // Standing queries fire the moment the primary copy lands.
            for (trigger_id, origin) in self.triggers.fired(index, &record, dims) {
                result.sends.push((
                    origin,
                    MindPayload::TriggerFired {
                        trigger_id,
                        at: self.id(),
                        record: record.clone(),
                    },
                ));
            }
        }
        if op_id != 0 {
            self.seen_ops.insert(op_id);
            result.sends.push((acker, MindPayload::Ack { op_id }));
        }
        // Push replicas to the prefix neighbors that would take over
        // (cloned per target — these cross the wire), then store the
        // original record by move: the local insert never copies it.
        if !is_replica {
            let targets = match replication {
                Replication::None => Vec::new(),
                Replication::Level(m) => self.overlay.replica_targets(m as usize),
                Replication::Full => self.overlay.all_neighbor_targets(),
            };
            for t in targets {
                let rep_op = self.next_op_id();
                let horizon = self.op_horizon();
                result.sends.push((
                    t,
                    MindPayload::Replica {
                        index: index.to_string(),
                        version,
                        record: record.clone(),
                        op_id: rep_op,
                        horizon,
                    },
                ));
            }
        }
        let state = self.indexes.get_mut(index).expect("checked above"); // lint:allow(unwrap) presence checked above
        let ver = state.version_mut(version).expect("checked above"); // lint:allow(unwrap) presence checked above
        if is_replica {
            ver.replica_rows += 1;
            ver.replicas.insert(record);
        } else {
            ver.primary_rows += 1;
            ver.primary.insert(record);
        }
        true
    }

    /// Applies a whole wire batch under one op id (primary or replica
    /// side). Returns the number of records stored — `0` when the batch
    /// was a duplicate or cannot apply yet (unknown index/version: it
    /// stays unacked so the origin's retry lands once the catalog heals).
    /// Mirrors [`MindNode::apply_insert`] record-for-record: histogram and
    /// trigger effects fire per record, but dedup, ack, and the replica
    /// pushes happen once per batch.
    #[allow(clippy::too_many_arguments)]
    fn apply_insert_batch(
        &mut self,
        index: &str,
        version: u32,
        records: Vec<Record>,
        is_replica: bool,
        acker: NodeId,
        op_id: u64,
        result: &mut BatchResult,
    ) -> usize {
        if op_id != 0 && self.seen_ops.contains(op_id) {
            self.metrics.dup_ops_ignored += 1;
            result.sends.push((acker, MindPayload::Ack { op_id }));
            return 0;
        }
        let Some(state) = self.indexes.get_mut(index) else {
            return 0;
        };
        let dims = state.schema.indexed_dims;
        let replication = state.replication;
        if state.version_mut(version).is_none() {
            return 0;
        }
        if !is_replica {
            for record in &records {
                state.day_histogram.add(record.point(dims));
            }
            // Standing queries fire per record, the moment the primary
            // copies land.
            for record in &records {
                for (trigger_id, origin) in self.triggers.fired(index, record, dims) {
                    result.sends.push((
                        origin,
                        MindPayload::TriggerFired {
                            trigger_id,
                            at: self.id(),
                            record: record.clone(),
                        },
                    ));
                }
            }
        }
        if op_id != 0 {
            self.seen_ops.insert(op_id);
            result.sends.push((acker, MindPayload::Ack { op_id }));
        }
        // Replicate the whole applied batch in one push per target —
        // the same frame/op/ack amortization the primary leg got.
        if !is_replica && !records.is_empty() {
            let targets = match replication {
                Replication::None => Vec::new(),
                Replication::Level(m) => self.overlay.replica_targets(m as usize),
                Replication::Full => self.overlay.all_neighbor_targets(),
            };
            for t in targets {
                let rep_op = self.next_op_id();
                let horizon = self.op_horizon();
                result.sends.push((
                    t,
                    MindPayload::ReplicaBatch {
                        index: index.to_string(),
                        version,
                        records: records.clone(),
                        op_id: rep_op,
                        horizon,
                    },
                ));
            }
        }
        let n = records.len();
        let state = self.indexes.get_mut(index).expect("checked above"); // lint:allow(unwrap) presence checked above
        let ver = state.version_mut(version).expect("checked above"); // lint:allow(unwrap) presence checked above
        if is_replica {
            ver.replica_rows += n as u64;
            ver.replicas.insert_batch(records);
        } else {
            ver.primary_rows += n as u64;
            ver.primary.insert_batch(records);
        }
        n
    }

    /// Answers a sub-query from the local store. Zero-copy: the returned
    /// records are shared handles into the store's record heap — nothing
    /// is materialized until (unless) the response crosses the wire.
    pub(crate) fn run_scan(
        &mut self,
        index: &str,
        version: u32,
        code: &BitCode,
        rect: &HyperRect,
        filters: &[CarriedFilter],
        primary_only: bool,
    ) -> Vec<Arc<Record>> {
        let Some(state) = self.indexes.get_mut(index) else {
            return Vec::new();
        };
        let Some(ver) = state.version_mut(version) else {
            return Vec::new();
        };
        // Clip to the sub-query's region so that (a) covering regions
        // never overlap and (b) replica rows are only returned by the node
        // that took the region over. Sub-queries overwhelmingly address
        // whole leaves, which the cut tree memoizes — only interior codes
        // pay for a rect reconstruction.
        let interior;
        let region = match ver.cuts.leaf_rect(code) {
            Some(leaf) => leaf,
            None => {
                interior = ver.cuts.rect_for_code(code);
                &interior
            }
        };
        let Some(clip) = region.intersection(rect) else {
            return Vec::new();
        };
        let accept = |r: &Arc<Record>| filters.iter().all(|f| f.accepts(r));
        let mut out: Vec<Arc<Record>> = ver
            .primary
            .range_records(&clip)
            .into_iter()
            .filter(accept)
            .collect();
        if !primary_only {
            out.extend(ver.replicas.range_records(&clip).into_iter().filter(accept));
        }
        self.metrics.records_served += out.len() as u64;
        out
    }

    /// Copies shared record handles into owned records — the one place a
    /// scan result is materialized, and only for payloads leaving the node.
    pub(crate) fn to_wire(records: &[Arc<Record>]) -> Vec<Record> {
        records.iter().map(|r| (**r).clone()).collect()
    }

    /// Routes a scan answer to its originator. When the originator is this
    /// node (the paper's common single-node query case) the tracker is fed
    /// the shared handles directly — no payload copy, no message; only a
    /// remote originator costs a wire materialization.
    pub(crate) fn deliver_response(
        &mut self,
        now: SimTime,
        dest: NodeId,
        resp: LocalResponse,
        out: &mut Out,
    ) {
        if dest == self.id() {
            let query_id = resp.query_id;
            if let Some(t) = self.queries.get_mut(&query_id) {
                t.on_response(now, resp.version, resp.code, dest, resp.records);
            }
            // A local answer can be the query's last: retire its timers.
            self.settle_query_timers(query_id, out);
        } else {
            out.send(
                dest,
                OverlayMsg::Direct {
                    payload: MindPayload::QueryResponse {
                        query_id: resp.query_id,
                        version: resp.version,
                        code: resp.code,
                        responder: self.id(),
                        records: Self::to_wire(&resp.records),
                    },
                },
            );
        }
    }

    fn release_batch(&mut self, now: SimTime, batch_id: u64, out: &mut Out) {
        if let Some(result) = self.pending_batches.remove(&batch_id) {
            for sent_at in result.insert_sent_ats {
                if self.metrics.insert_latencies.len() < self.cfg.metrics_samples_max {
                    self.metrics
                        .insert_latencies
                        .push((now, now.saturating_sub(sent_at)));
                }
            }
            for (dest, resp) in result.responses {
                self.deliver_response(now, dest, resp, out);
            }
            for (dest, payload) in result.sends {
                if dest == self.id() {
                    // Loopback shortcut (e.g. responding to our own query).
                    self.on_direct(now, dest, payload, out);
                } else {
                    // Replica pushes leave through here exactly once — arm
                    // their ack/retry tracking at actual transmission time.
                    if let MindPayload::Replica { op_id, .. }
                    | MindPayload::ReplicaBatch { op_id, .. } = &payload
                    {
                        if *op_id != 0 {
                            self.track_op(*op_id, OpTarget::Direct(dest), payload.clone(), out);
                        }
                    }
                    out.send(dest, OverlayMsg::Direct { payload });
                }
            }
        }
        if self.dac_queue.is_empty() {
            self.dac_busy = false;
        } else {
            out.set_timer(1, token(KIND_DAC_TICK, 0));
        }
    }

    /// Pending (unprocessed) DAC requests — the Figure 11 hotspot signal.
    pub fn dac_pending(&self) -> usize {
        self.dac_queue.len()
    }

    /// Handles DAC-class timers; `true` if `kind` was ours.
    pub(crate) fn handle_dac_timer(
        &mut self,
        now: SimTime,
        kind: u64,
        arg: u64,
        out: &mut Out,
    ) -> bool {
        match kind {
            KIND_DAC_TICK => self.dac_tick(now, out),
            KIND_BATCH => self.release_batch(now, arg, out),
            _ => return false,
        }
        true
    }
}
