//! The MIND node: overlay + index management + DAC storage queue.
//!
//! A [`MindNode`] is the complete per-host system of Figure 6: the overlay
//! communication component on one side, the index/data management stack on
//! the other, glued by an event-driven dispatcher. It implements the MIND
//! interface of Section 3.2 — `create_index`, `drop_index`,
//! `insert_record`, `query_index` — callable on any node.
//!
//! The node is decomposed by protocol concern: reliable delivery and
//! bounded dedup live in [`crate::reliability`], query split/retry/
//! completion in [`crate::query_track`], day-boundary version rollover in
//! [`crate::rollover`], and the batched storage queue in
//! [`crate::dac_drive`]. This module owns the struct, the MIND interface,
//! and the event dispatcher that fans timers out to those concerns.

use crate::dac_drive::{BatchResult, DacJob, PendingHandoff};
use crate::index::IndexState;
use crate::messages::{CarriedFilter, IndexDef, MindPayload, Replication};
use crate::metrics::NodeMetrics;
use crate::query::QueryTracker;
use crate::query_track::QueryRetryMeta;
use crate::reliability::{PendingOp, SeenOps};
use crate::trigger::{Trigger, TriggerSet};
use mind_histogram::{CutTree, GridHistogram};
use mind_overlay::{Overlay, OverlayConfig, OverlayEvent, OverlayMsg};
use mind_store::{DacCostModel, StoreKind};
use mind_types::node::{NodeLogic, Outbox, SimTime, SECONDS};
use mind_types::{BitCode, HyperRect, MindError, NodeId, Record};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// The outbox type every MIND handler writes into.
pub(crate) type Out = Outbox<OverlayMsg<MindPayload>>;

/// Timer-token tag for MIND-level timers (the overlay uses `0xA5`).
const TOKEN_TAG: u64 = 0xB6 << 56;

/// Packs a MIND timer token: tag ∥ kind ∥ 48-bit argument. The kind
/// constants live with the modules that own them (`dac_drive`,
/// `query_track`, `rollover`, `reliability`).
pub(crate) fn token(kind: u64, arg: u64) -> u64 {
    TOKEN_TAG | (kind << 48) | (arg & 0xFFFF_FFFF_FFFF)
}

/// MIND node configuration.
#[derive(Debug, Clone, Copy)]
pub struct MindConfig {
    /// Storage processing costs (models the prototype's MySQL + JDBC).
    pub dac_cost: DacCostModel,
    /// Store backend for every per-version record store on this node
    /// (`MIND_STORE=kdtree|bitmap`; see [`StoreKind::from_env`]).
    pub store_kind: StoreKind,
    /// Requests processed per DAC batch.
    pub dac_batch_size: usize,
    /// Queries time out (and count as failed) after this long.
    pub query_deadline: SimTime,
    /// Granularity of the per-day histograms shipped to the collector.
    pub hist_granularity: u32,
    /// Depth of balanced cut trees computed from collected histograms.
    pub cut_depth: u8,
    /// Length of a "day" in record-timestamp seconds (for versioning).
    pub day_len: u64,
    /// Whether the designated collector computes and floods new versions.
    pub auto_versioning: bool,
    /// How long the collector waits for stragglers after the first report.
    pub collect_grace: SimTime,
    /// How long a fresh joiner keeps forwarding sub-queries to its
    /// acceptor for the historical data it did not migrate (the paper's
    /// "pointer ... dropped once the data have aged", Section 3.4).
    pub handoff_ttl: SimTime,
    /// Base timeout before an unacked insert/replica is re-sent; doubles
    /// per attempt. `0` disables the ack/retry machinery entirely.
    pub retry_timeout: SimTime,
    /// Retry budget per operation (and per query-retry round sequence).
    pub max_retries: u32,
    /// Interval between re-dispatch rounds for a query's unanswered
    /// plans/sub-queries. `0` disables query retries.
    pub query_retry_interval: SimTime,
    /// Interval between anti-entropy catalog exchanges with a round-robin
    /// neighbor (heals lost index/version/trigger floods). `0` disables.
    pub anti_entropy_interval: SimTime,
    /// Ingest fast path: records bound for the same index, version, and
    /// region code are coalesced at the origin into one `InsertBatch`
    /// frame of up to this many records (one frame, one op id, one ack).
    /// `1` (the default) disables batching — every insert leaves
    /// immediately as a plain `Insert`, exactly the pre-batching wire
    /// behavior.
    pub insert_batch_max: usize,
    /// How long a partially filled wire batch may age before it is
    /// flushed anyway (the size/age batcher in `crate::reliability`).
    /// Ignored while `insert_batch_max <= 1`.
    pub insert_batch_age: SimTime,
    /// This node's boot epoch, carried in the high 40 bits of the wire
    /// horizon field. A process runtime sets it to something strictly
    /// increasing across restarts of the same node id (e.g. wall-clock
    /// milliseconds at startup), so peers can tell a restarted origin
    /// that counts ops from zero again apart from a stale duplicate of
    /// the old incarnation (see `crate::reliability`). Simulated nodes
    /// keep the default `0` — a crash/revive there resumes the same
    /// logic object, whose op counter never regresses.
    pub boot_id: u64,
    /// Cap on the per-node insert latency/hop sample vectors
    /// ([`NodeMetrics::insert_latencies`] / `insert_hops`). The figure
    /// experiments keep the unlimited default; large-scale benchmarks set
    /// a finite cap so per-node memory stays bounded as worlds grow
    /// (samples past the cap are dropped, the scalar counters still move).
    pub metrics_samples_max: usize,
}

impl Default for MindConfig {
    fn default() -> Self {
        MindConfig {
            dac_cost: DacCostModel::default(),
            store_kind: StoreKind::KdTree,
            dac_batch_size: 64,
            query_deadline: 60 * SECONDS,
            hist_granularity: 64,
            cut_depth: 10,
            day_len: 86_400,
            auto_versioning: true,
            collect_grace: 10 * SECONDS,
            handoff_ttl: 3600 * SECONDS,
            retry_timeout: 5 * SECONDS,
            max_retries: 6,
            query_retry_interval: 8 * SECONDS,
            anti_entropy_interval: 45 * SECONDS,
            insert_batch_max: 1,
            insert_batch_age: SECONDS / 20,
            boot_id: 0,
            metrics_samples_max: usize::MAX,
        }
    }
}

/// A complete MIND node.
pub struct MindNode {
    id: NodeId,
    pub(crate) cfg: MindConfig,
    pub(crate) overlay: Overlay<MindPayload>,
    pub(crate) indexes: BTreeMap<String, IndexState>,
    // DAC (crate::dac_drive)
    pub(crate) dac_queue: VecDeque<DacJob>,
    pub(crate) dac_busy: bool,
    pub(crate) batch_seq: u64,
    pub(crate) pending_batches: HashMap<u64, BatchResult>,
    // origin-side wire batching (crate::reliability)
    /// Open wire batches by `(index, version, code.len, code.as_index)` —
    /// a `BTreeMap` so a bulk drain walks them in a replay-stable order.
    pub(crate) wire_batches: BTreeMap<(String, u32, u8, u64), crate::reliability::WireBatch>,
    /// Flush-timer argument → open-batch key (the 48-bit timer budget
    /// cannot carry the key itself).
    pub(crate) wire_batch_keys: HashMap<u64, (String, u32, u8, u64)>,
    pub(crate) wire_batch_seq: u64,
    // reliable delivery + bounded dedup (crate::reliability)
    pub(crate) op_seq: u64,
    pub(crate) pending_ops: HashMap<u64, PendingOp>,
    pub(crate) seen_ops: SeenOps,
    /// Counters of this node's own unsettled ops; their minimum pins the
    /// horizon advertised to receivers (DESIGN.md §10).
    pub(crate) live_op_counters: BTreeSet<u64>,
    pub(crate) anti_entropy_rr: u64,
    /// Memoized catalog digest for the anti-entropy exchange; cleared by
    /// every catalog mutation (index/version/trigger installs and drops),
    /// recomputed lazily on the next tick or digest receipt. Catalog
    /// changes are rare (index creation, daily rollover), so steady-state
    /// anti-entropy never re-walks the cut trees.
    catalog_digest_cache: Option<u64>,
    // queries (crate::query_track)
    pub(crate) query_seq: u64,
    /// Reused covering-code buffer for root-query splits: the flat cut
    /// tree fills it in place, so steady-state query routing allocates
    /// only for the outgoing plan message.
    pub(crate) cover_scratch: Vec<BitCode>,
    /// In-flight and finished query trackers, by query id.
    pub queries: HashMap<u64, QueryTracker>,
    pub(crate) query_meta: HashMap<u64, QueryRetryMeta>,
    // join-time data handoff (Section 3.4)
    pub(crate) handoff: Option<(NodeId, SimTime)>,
    pub(crate) handoff_seq: u64,
    pub(crate) pending_handoffs: HashMap<u64, PendingHandoff>,
    // standing queries
    pub(crate) triggers: TriggerSet,
    trigger_seq: u64,
    /// Notifications received for triggers this node subscribed:
    /// `(trigger_id, storing node, record)`.
    pub trigger_log: Vec<(u64, NodeId, Record)>,
    // histogram collection (collector role, crate::rollover)
    pub(crate) collect_seq: u64,
    pub(crate) collecting: HashMap<u64, (String, u64, GridHistogram, usize)>,
    pub(crate) collect_keys: HashMap<(String, u64), u64>,
    /// Metrics this node accumulated.
    pub metrics: NodeMetrics,
}

impl MindNode {
    /// A node on a statically constructed overlay.
    pub fn new_static(
        id: NodeId,
        code: BitCode,
        entries: Vec<mind_overlay::NeighborEntry>,
        overlay_cfg: OverlayConfig,
        cfg: MindConfig,
    ) -> Self {
        Self::with_overlay(id, Overlay::new_static(id, code, entries, overlay_cfg), cfg)
    }

    /// The first node of a dynamically grown overlay.
    pub fn new_root(id: NodeId, overlay_cfg: OverlayConfig, cfg: MindConfig) -> Self {
        Self::with_overlay(id, Overlay::new_root(id, overlay_cfg), cfg)
    }

    /// A node that joins through `bootstrap` at startup.
    pub fn new_joiner(
        id: NodeId,
        bootstrap: NodeId,
        overlay_cfg: OverlayConfig,
        cfg: MindConfig,
    ) -> Self {
        Self::with_overlay(id, Overlay::new_joiner(id, bootstrap, overlay_cfg), cfg)
    }

    fn with_overlay(id: NodeId, overlay: Overlay<MindPayload>, cfg: MindConfig) -> Self {
        MindNode {
            id,
            cfg,
            overlay,
            indexes: BTreeMap::new(),
            dac_queue: VecDeque::new(),
            dac_busy: false,
            batch_seq: 0,
            pending_batches: HashMap::new(),
            wire_batches: BTreeMap::new(),
            wire_batch_keys: HashMap::new(),
            wire_batch_seq: 0,
            op_seq: 0,
            pending_ops: HashMap::new(),
            seen_ops: SeenOps::default(),
            live_op_counters: BTreeSet::new(),
            anti_entropy_rr: 0,
            catalog_digest_cache: None,
            query_seq: 0,
            cover_scratch: Vec::new(),
            queries: HashMap::new(),
            query_meta: HashMap::new(),
            handoff: None,
            handoff_seq: 0,
            pending_handoffs: HashMap::new(),
            triggers: TriggerSet::new(),
            trigger_seq: 0,
            trigger_log: Vec::new(),
            collect_seq: 0,
            collecting: HashMap::new(),
            collect_keys: HashMap::new(),
            metrics: NodeMetrics::default(),
        }
    }

    /// Discards state that cannot survive a crash: in-flight DAC jobs,
    /// query trackers (their deadline timers died with the old
    /// incarnation), handoff and collection protocols, and every in-memory
    /// row store. The index *catalog* (schemas, cut trees, version
    /// numbering) is kept — it is re-validated against the acceptor's
    /// catalog when the rejoin completes.
    fn reset_after_restart(&mut self) {
        self.dac_queue.clear();
        self.dac_busy = false;
        self.pending_batches.clear();
        // Buffered-but-unsent wire batches die with the crash (their op
        // ids were never reserved, so nothing retries them) — same loss
        // semantics as records sitting in the DAC queue.
        self.wire_batches.clear();
        self.wire_batch_keys.clear();
        self.pending_ops.clear();
        // The crash abandoned every in-flight op (their retry timers died
        // with the old incarnation): settle them all, so the horizon
        // advertised after restart advances past them.
        self.live_op_counters.clear();
        // Forget applied op ids too: the rows died with the stores, so a
        // retried op must be stored again, not deduped into data loss.
        self.seen_ops.clear();
        self.queries.clear();
        self.query_meta.clear();
        self.handoff = None;
        self.pending_handoffs.clear();
        self.collecting.clear();
        self.collect_keys.clear();
        for state in self.indexes.values_mut() {
            state.reset_stores();
        }
    }

    /// This node's transport address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The overlay component (read-only; for inspection).
    pub fn overlay(&self) -> &Overlay<MindPayload> {
        &self.overlay
    }

    /// Local state of an index, if created.
    pub fn index_state(&self, tag: &str) -> Option<&IndexState> {
        self.indexes.get(tag)
    }

    /// Tags of all indices known to this node.
    pub fn index_tags(&self) -> Vec<String> {
        let mut v: Vec<String> = self.indexes.keys().cloned().collect();
        v.sort();
        v
    }

    /// Digest of this node's catalog — every index's schema, replication
    /// and versions plus every installed trigger — streamed through the
    /// codec-layout hash without materializing a response message. Two
    /// nodes whose `CatalogResponse` payloads would carry the same bytes
    /// agree on this value; flood-delivery order is normalized (indices
    /// iterate a `BTreeMap`, triggers are digested in id order).
    pub fn catalog_digest(&mut self) -> u64 {
        if let Some(d) = self.catalog_digest_cache {
            return d;
        }
        let d = self.compute_catalog_digest();
        self.catalog_digest_cache = Some(d);
        d
    }

    /// The uncached digest walk — also usable through shared references
    /// (test inspection of a running world).
    pub fn compute_catalog_digest(&self) -> u64 {
        let mut dig = crate::wire_len::Digest::new();
        dig.absorb(&(self.indexes.len() as u32));
        for (tag, st) in &self.indexes {
            dig.absorb(tag);
            dig.absorb(&st.schema);
            dig.absorb(&st.replication);
            dig.absorb(&(st.versions.len() as u32));
            for v in &st.versions {
                dig.absorb(&v.from_ts);
                dig.absorb(&v.cuts);
            }
        }
        let mut triggers = self.triggers.all();
        triggers.sort_by_key(|t| t.trigger_id);
        dig.absorb(&(triggers.len() as u32));
        for t in &triggers {
            dig.absorb(t);
        }
        dig.finish()
    }

    /// Drops the memoized catalog digest; called by every mutation of the
    /// index/trigger catalog.
    fn invalidate_catalog_digest(&mut self) {
        self.catalog_digest_cache = None;
    }

    /// The full catalog transfer: every index definition and every
    /// standing query — sent to fresh joiners and to anti-entropy peers
    /// whose digest disagreed with ours.
    fn catalog_response(&self) -> MindPayload {
        let indexes: Vec<IndexDef> = self
            .indexes
            .values()
            .map(|st| IndexDef {
                schema: st.schema.clone(),
                replication: st.replication,
                versions: st
                    .versions
                    .iter()
                    .map(|v| (v.from_ts, v.cuts.clone()))
                    .collect(),
            })
            .collect();
        MindPayload::CatalogResponse {
            indexes,
            triggers: self.triggers.all(),
        }
    }

    // ---- the MIND interface (Section 3.2) ----

    /// `create_index`: instantiates `schema` on every overlay node with
    /// version-0 cuts and the given replication level.
    pub fn create_index(
        &mut self,
        schema: mind_types::IndexSchema,
        cuts: CutTree,
        replication: Replication,
        out: &mut Out,
    ) -> Result<(), MindError> {
        if self.indexes.contains_key(&schema.tag) {
            return Err(MindError::IndexExists(schema.tag));
        }
        let events = self.overlay.flood(
            MindPayload::CreateIndex {
                schema,
                cuts: std::sync::Arc::new(cuts),
                replication,
            },
            out,
        );
        self.process_events(0, events, out);
        Ok(())
    }

    /// `drop_index`: removes the index from every node.
    pub fn drop_index(&mut self, tag: &str, out: &mut Out) -> Result<(), MindError> {
        if !self.indexes.contains_key(tag) {
            return Err(MindError::UnknownIndex(tag.to_string()));
        }
        let events = self.overlay.flood(
            MindPayload::DropIndex {
                index: tag.to_string(),
            },
            out,
        );
        self.process_events(0, events, out);
        Ok(())
    }

    /// `insert_record`: validates the record, embeds it through the
    /// governing version's cuts, and routes it to its region owner.
    pub fn insert(
        &mut self,
        now: SimTime,
        index: &str,
        record: Record,
        out: &mut Out,
    ) -> Result<(), MindError> {
        let state = self
            .indexes
            .get(index)
            .ok_or_else(|| MindError::UnknownIndex(index.to_string()))?;
        let record = state.conform(record)?;
        let ts = state.record_ts(&record);
        let version = state.version_for_ts(ts);
        let cuts = &state.version(version).expect("version exists").cuts; // lint:allow(unwrap) version_for_ts returns an installed version
        let code = cuts.code_for_point(record.point(state.schema.indexed_dims));
        self.metrics.inserts_originated += 1;
        if self.cfg.insert_batch_max > 1 {
            // Ingest fast path: coalesce into the per-(index, version,
            // code) wire batch; it leaves when full or aged out.
            self.buffer_wire_insert(now, index.to_string(), version, code, record, out);
            return Ok(());
        }
        let op_id = self.next_op_id();
        // Horizon read *after* reserving the op's counter, so the payload
        // never claims its own op as settled.
        let horizon = self.op_horizon();
        let payload = MindPayload::Insert {
            index: index.to_string(),
            version,
            record,
            origin: self.id,
            sent_at: now,
            op_id,
            horizon,
        };
        self.track_op(
            op_id,
            crate::reliability::OpTarget::Routed(code),
            payload.clone(),
            out,
        );
        let events = self.overlay.route(now, code, payload, out);
        self.process_events(now, events, out);
        Ok(())
    }

    /// Installs a standing query: any node that stores a matching primary
    /// record will notify this node directly (see [`crate::trigger`]).
    /// Returns the trigger id.
    pub fn create_trigger(
        &mut self,
        index: &str,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
        out: &mut Out,
    ) -> Result<u64, MindError> {
        let state = self
            .indexes
            .get(index)
            .ok_or_else(|| MindError::UnknownIndex(index.to_string()))?;
        if rect.dims() != state.schema.indexed_dims {
            return Err(MindError::SchemaMismatch {
                index: index.to_string(),
                reason: format!(
                    "trigger has {} dims, index has {}",
                    rect.dims(),
                    state.schema.indexed_dims
                ),
            });
        }
        let trigger_id = ((self.id.0 as u64) << 20) | (self.trigger_seq & 0xF_FFFF);
        self.trigger_seq += 1;
        let trigger = Trigger {
            trigger_id,
            index: index.to_string(),
            rect,
            filters,
            origin: self.id,
        };
        let events = self
            .overlay
            .flood(MindPayload::CreateTrigger { trigger }, out);
        self.process_events(0, events, out);
        Ok(trigger_id)
    }

    /// Removes a standing query everywhere.
    pub fn drop_trigger(&mut self, trigger_id: u64, out: &mut Out) {
        let events = self
            .overlay
            .flood(MindPayload::DropTrigger { trigger_id }, out);
        self.process_events(0, events, out);
    }

    /// Drops every index version whose governed time range ends before
    /// `before_ts` — the version aging the paper defers ("the pointer
    /// will be dropped once the data have aged", Section 3.4/3.7).
    /// Returns the number of versions garbage-collected locally.
    pub fn gc_versions(&mut self, index: &str, before_ts: u64) -> Result<usize, MindError> {
        let state = self
            .indexes
            .get_mut(index)
            .ok_or_else(|| MindError::UnknownIndex(index.to_string()))?;
        Ok(state.gc_before(before_ts))
    }

    // ---- event plumbing ----

    pub(crate) fn process_events(
        &mut self,
        now: SimTime,
        events: Vec<OverlayEvent<MindPayload>>,
        out: &mut Out,
    ) {
        for ev in events {
            match ev {
                OverlayEvent::Delivered {
                    target: _,
                    hops,
                    payload,
                } => {
                    self.on_routed(now, hops, payload, out);
                }
                OverlayEvent::DirectDelivered { from, payload } => {
                    self.on_direct(now, from, payload, out);
                }
                OverlayEvent::FloodDelivered { payload } => self.on_flood(payload),
                OverlayEvent::Undeliverable { target, .. } => {
                    self.metrics.undeliverable += 1;
                    if self.metrics.undeliverable_targets.len() < 64 {
                        self.metrics.undeliverable_targets.push(target);
                    }
                }
                OverlayEvent::Joined { acceptor, .. } => {
                    // Section 3.4: fetch the index catalog from the node
                    // we attached to, and keep a pointer to it for the
                    // region's historical data until it ages.
                    self.handoff = Some((acceptor, now));
                    out.send(
                        acceptor,
                        OverlayMsg::Direct {
                            payload: MindPayload::CatalogRequest,
                        },
                    );
                }
                OverlayEvent::CodeChanged { .. }
                | OverlayEvent::TookOver { .. }
                | OverlayEvent::NeighborFailed { .. } => {}
            }
        }
    }

    fn on_flood(&mut self, payload: MindPayload) {
        // Every flood-delivered payload mutates the index/trigger catalog,
        // so the memoized anti-entropy digest is dropped up front.
        self.invalidate_catalog_digest();
        match payload {
            MindPayload::CreateIndex {
                schema,
                cuts,
                replication,
            } => {
                let tag = schema.tag.clone();
                self.indexes.entry(tag).or_insert_with(|| {
                    IndexState::new(
                        schema,
                        cuts,
                        replication,
                        self.cfg.hist_granularity,
                        self.cfg.store_kind,
                    )
                });
            }
            MindPayload::NewVersion {
                index,
                version,
                from_ts,
                cuts,
            } => {
                if let Some(state) = self.indexes.get_mut(&index) {
                    state.install_version(version, from_ts, cuts);
                }
            }
            MindPayload::DropIndex { index } => {
                self.indexes.remove(&index);
                self.triggers.remove_index(&index);
            }
            MindPayload::CreateTrigger { trigger } => {
                self.triggers.install(trigger);
            }
            MindPayload::DropTrigger { trigger_id } => {
                self.triggers.remove(trigger_id);
            }
            // Routed/direct-only payloads never arrive by flood; listing
            // them keeps this dispatch exhaustive, so a new wire variant
            // must explicitly choose its delivery path here.
            MindPayload::Insert { .. }
            | MindPayload::InsertBatch { .. }
            | MindPayload::Replica { .. }
            | MindPayload::ReplicaBatch { .. }
            | MindPayload::Ack { .. }
            | MindPayload::RootQuery { .. }
            | MindPayload::SubQuery { .. }
            | MindPayload::QueryPlan { .. }
            | MindPayload::QueryResponse { .. }
            | MindPayload::TriggerFired { .. }
            | MindPayload::CatalogRequest
            | MindPayload::CatalogDigest { .. }
            | MindPayload::CatalogResponse { .. }
            | MindPayload::HandoffScan { .. }
            | MindPayload::HandoffRecords { .. }
            | MindPayload::HistReport { .. } => {}
        }
    }

    fn on_routed(&mut self, now: SimTime, hops: u32, payload: MindPayload, out: &mut Out) {
        match payload {
            MindPayload::Insert {
                index,
                version,
                record,
                origin,
                sent_at,
                op_id,
                horizon,
            } => {
                if op_id != 0 {
                    // Already applied (a retry whose ack was lost, a
                    // network duplicate, or a dead incarnation's
                    // straggler): re-ack, don't touch the DAC.
                    if self.seen_ops.observe(op_id, horizon) {
                        self.metrics.dup_ops_ignored += 1;
                        self.send_ack(origin, op_id, out);
                        return;
                    }
                }
                if self.metrics.insert_hops.len() < self.cfg.metrics_samples_max {
                    self.metrics.insert_hops.push(hops);
                }
                self.enqueue(
                    now,
                    DacJob::Insert {
                        index,
                        version,
                        record,
                        sent_at,
                        is_replica: false,
                        acker: origin,
                        op_id,
                    },
                    out,
                );
            }
            MindPayload::InsertBatch {
                index,
                version,
                records,
                origin,
                sent_at,
                op_id,
                horizon,
            } => {
                if op_id != 0 {
                    // The whole batch was applied atomically under one op
                    // id, so one dedup check covers every record.
                    if self.seen_ops.observe(op_id, horizon) {
                        self.metrics.dup_ops_ignored += 1;
                        self.send_ack(origin, op_id, out);
                        return;
                    }
                }
                // One frame traveled once: one hop sample per batch.
                if self.metrics.insert_hops.len() < self.cfg.metrics_samples_max {
                    self.metrics.insert_hops.push(hops);
                }
                self.enqueue(
                    now,
                    DacJob::InsertBatch {
                        index,
                        version,
                        records,
                        sent_at,
                        is_replica: false,
                        acker: origin,
                        op_id,
                    },
                    out,
                );
            }
            MindPayload::RootQuery {
                query_id,
                index,
                version,
                rect,
                filters,
                origin,
            } => {
                self.split_root_query(now, query_id, &index, version, rect, filters, origin, out);
            }
            MindPayload::SubQuery {
                query_id,
                index,
                version,
                code,
                rect,
                filters,
                origin,
            } => {
                self.on_subquery(
                    now, query_id, index, version, code, rect, filters, origin, out,
                );
            }
            MindPayload::HistReport {
                index,
                day,
                reporter: _,
                hist,
            } => {
                self.on_hist_report(now, index, day, hist, out);
            }
            other => {
                debug_assert!(false, "unexpected routed payload: {other:?}");
            }
        }
    }

    pub(crate) fn on_direct(
        &mut self,
        now: SimTime,
        from: NodeId,
        payload: MindPayload,
        out: &mut Out,
    ) {
        match payload {
            MindPayload::Replica {
                index,
                version,
                record,
                op_id,
                horizon,
            } => {
                if op_id != 0 && self.seen_ops.observe(op_id, horizon) {
                    self.metrics.dup_ops_ignored += 1;
                    self.send_ack(from, op_id, out);
                    return;
                }
                // Replica writes skip latency metrics and histogram
                // accounting but share the DAC (they cost real work).
                self.enqueue(
                    now,
                    DacJob::Insert {
                        index,
                        version,
                        record,
                        sent_at: now,
                        is_replica: true,
                        acker: from,
                        op_id,
                    },
                    out,
                );
            }
            MindPayload::ReplicaBatch {
                index,
                version,
                records,
                op_id,
                horizon,
            } => {
                if op_id != 0 && self.seen_ops.observe(op_id, horizon) {
                    self.metrics.dup_ops_ignored += 1;
                    self.send_ack(from, op_id, out);
                    return;
                }
                self.enqueue(
                    now,
                    DacJob::InsertBatch {
                        index,
                        version,
                        records,
                        sent_at: now,
                        is_replica: true,
                        acker: from,
                        op_id,
                    },
                    out,
                );
            }
            MindPayload::Ack { op_id } => self.on_ack(op_id, out),
            MindPayload::TriggerFired {
                trigger_id,
                at,
                record,
            } => {
                self.trigger_log.push((trigger_id, at, record));
            }
            MindPayload::CatalogRequest => {
                out.send(
                    from,
                    OverlayMsg::Direct {
                        payload: self.catalog_response(),
                    },
                );
            }
            MindPayload::CatalogDigest { digest } => {
                // The anti-entropy steady state: digests agree, nothing
                // moves. Only a disagreeing peer costs a full transfer.
                if digest != self.catalog_digest() {
                    self.metrics.catalog_digest_mismatches += 1;
                    out.send(
                        from,
                        OverlayMsg::Direct {
                            payload: self.catalog_response(),
                        },
                    );
                }
            }
            MindPayload::CatalogResponse { indexes, triggers } => {
                self.invalidate_catalog_digest();
                for def in indexes {
                    let tag = def.schema.tag.clone();
                    let state = self.indexes.entry(tag).or_insert_with(|| {
                        let mut it = def.versions.iter();
                        let (_, first_cuts) = it.next().expect("at least version 0").clone(); // lint:allow(unwrap) catalog entries always carry version 0
                        IndexState::new(
                            def.schema.clone(),
                            first_cuts,
                            def.replication,
                            self.cfg.hist_granularity,
                            self.cfg.store_kind,
                        )
                    });
                    for (v, (from_ts, cuts)) in def.versions.into_iter().enumerate() {
                        state.install_version(v as u32, from_ts, cuts);
                    }
                }
                for t in triggers {
                    self.triggers.install(t);
                }
            }
            MindPayload::HandoffScan {
                handoff_id,
                index,
                version,
                code,
                rect,
                filters,
            } => {
                // Scan our retained historical rows for the joiner's
                // region — primaries only: replica copies there are echoes
                // of rows whose primaries already answer elsewhere (e.g.
                // the joiner's own post-join inserts replicated back to
                // us, its sibling).
                let records = self.run_scan(&index, version, &code, &rect, &filters, true);
                out.send(
                    from,
                    OverlayMsg::Direct {
                        payload: MindPayload::HandoffRecords {
                            handoff_id,
                            records: Self::to_wire(&records),
                        },
                    },
                );
            }
            MindPayload::HandoffRecords {
                handoff_id,
                records,
            } => {
                if let Some(p) = self.pending_handoffs.remove(&handoff_id) {
                    let mut merged = p.local;
                    merged.extend(records.into_iter().map(Arc::new));
                    self.deliver_response(
                        now,
                        p.origin,
                        crate::dac_drive::LocalResponse {
                            query_id: p.query_id,
                            version: p.version,
                            code: p.code,
                            records: merged,
                        },
                        out,
                    );
                }
            }
            MindPayload::QueryPlan {
                query_id,
                version,
                codes,
                replaces,
            } => {
                if let Some(t) = self.queries.get_mut(&query_id) {
                    t.on_plan(now, version, codes, replaces);
                }
                // An empty or refined plan can complete the query.
                self.settle_query_timers(query_id, out);
            }
            MindPayload::QueryResponse {
                query_id,
                version,
                code,
                responder,
                records,
            } => {
                if std::env::var_os("MIND_TRACE").is_some() && !records.is_empty() {
                    eprintln!(
                        "[resp] q{query_id} v{version} code={code} from {responder}: {} records",
                        records.len()
                    );
                }
                if let Some(t) = self.queries.get_mut(&query_id) {
                    // Arriving off the wire: wrap into shared handles once.
                    t.on_response(
                        now,
                        version,
                        code,
                        responder,
                        records.into_iter().map(Arc::new).collect(),
                    );
                }
                self.settle_query_timers(query_id, out);
            }
            other => {
                debug_assert!(false, "unexpected direct payload: {other:?}");
            }
        }
    }
}

impl NodeLogic for MindNode {
    type Msg = OverlayMsg<MindPayload>;

    fn on_start(&mut self, now: SimTime, out: &mut Outbox<Self::Msg>) {
        if self.overlay.on_start(now, out) {
            self.reset_after_restart();
        }
        self.arm_anti_entropy(out);
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: Self::Msg,
        out: &mut Outbox<Self::Msg>,
    ) {
        let events = self.overlay.handle(now, from, msg, out);
        self.process_events(now, events, out);
    }

    fn on_timer(&mut self, now: SimTime, tok: u64, out: &mut Outbox<Self::Msg>) {
        if let Some(events) = self.overlay.on_timer(now, tok, out) {
            self.process_events(now, events, out);
            return;
        }
        if tok & (0xFF << 56) != TOKEN_TAG {
            return;
        }
        let kind = (tok >> 48) & 0xFF;
        let arg = tok & 0xFFFF_FFFF_FFFF;
        // Each protocol concern claims its own timer kinds; the chain
        // stops at the first taker.
        let _ = self.handle_dac_timer(now, kind, arg, out)
            || self.handle_query_timer(now, kind, arg, out)
            || self.handle_rollover_timer(kind, arg, out)
            || self.handle_reliability_timer(now, kind, arg, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_scheme_disjoint_from_overlay() {
        // Overlay tokens are tagged 0xA5; ours 0xB6.
        let t = token(crate::dac_drive::KIND_DAC_TICK, 0);
        assert_eq!(t >> 56, 0xB6);
    }

    #[test]
    fn timer_kinds_are_disjoint_across_modules() {
        let kinds = [
            crate::dac_drive::KIND_DAC_TICK,
            crate::dac_drive::KIND_BATCH,
            crate::query_track::KIND_QUERY_DEADLINE,
            crate::query_track::KIND_QUERY_RETRY,
            crate::rollover::KIND_COLLECT,
            crate::reliability::KIND_OP_RETRY, // lint:allow(retrytimer) disjointness check, not a use
            crate::reliability::KIND_ANTI_ENTROPY, // lint:allow(retrytimer) disjointness check, not a use
            crate::reliability::KIND_BATCH_FLUSH,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in kinds.iter().skip(i + 1) {
                assert_ne!(a, b, "timer kinds collide");
            }
        }
    }
}
