//! The MIND node: overlay + index management + DAC storage queue.
//!
//! A [`MindNode`] is the complete per-host system of Figure 6: the overlay
//! communication component on one side, the index/data management stack on
//! the other, glued by an event-driven dispatcher. It implements the MIND
//! interface of Section 3.2 — `create_index`, `drop_index`,
//! `insert_record`, `query_index` — callable on any node.

use crate::index::IndexState;
use crate::messages::{CarriedFilter, IndexDef, MindPayload, Replication};
use crate::metrics::NodeMetrics;
use crate::query::QueryTracker;
use crate::trigger::{Trigger, TriggerSet};
use mind_histogram::{CutTree, GridHistogram};
use mind_overlay::{Overlay, OverlayConfig, OverlayEvent, OverlayMsg};
use mind_store::DacCostModel;
use mind_types::node::{NodeLogic, Outbox, SimTime, SECONDS};
use mind_types::{BitCode, HyperRect, MindError, NodeId, Record};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Timer-token tag for MIND-level timers (the overlay uses `0xA5`).
const TOKEN_TAG: u64 = 0xB6 << 56;
const KIND_DAC_TICK: u64 = 0;
const KIND_BATCH: u64 = 1;
const KIND_QUERY_DEADLINE: u64 = 2;
const KIND_COLLECT: u64 = 3;
const KIND_OP_RETRY: u64 = 4;
const KIND_QUERY_RETRY: u64 = 5;
const KIND_ANTI_ENTROPY: u64 = 6;

fn token(kind: u64, arg: u64) -> u64 {
    TOKEN_TAG | (kind << 48) | (arg & 0xFFFF_FFFF_FFFF)
}

/// The region code all histogram reports route to: the node owning the
/// all-zeros corner of the code space acts as the designated collector of
/// Section 3.7.
fn collector_code() -> BitCode {
    BitCode::from_raw(0, 16)
}

/// MIND node configuration.
#[derive(Debug, Clone, Copy)]
pub struct MindConfig {
    /// Storage processing costs (models the prototype's MySQL + JDBC).
    pub dac_cost: DacCostModel,
    /// Requests processed per DAC batch.
    pub dac_batch_size: usize,
    /// Queries time out (and count as failed) after this long.
    pub query_deadline: SimTime,
    /// Granularity of the per-day histograms shipped to the collector.
    pub hist_granularity: u32,
    /// Depth of balanced cut trees computed from collected histograms.
    pub cut_depth: u8,
    /// Length of a "day" in record-timestamp seconds (for versioning).
    pub day_len: u64,
    /// Whether the designated collector computes and floods new versions.
    pub auto_versioning: bool,
    /// How long the collector waits for stragglers after the first report.
    pub collect_grace: SimTime,
    /// How long a fresh joiner keeps forwarding sub-queries to its
    /// acceptor for the historical data it did not migrate (the paper's
    /// "pointer ... dropped once the data have aged", Section 3.4).
    pub handoff_ttl: SimTime,
    /// Base timeout before an unacked insert/replica is re-sent; doubles
    /// per attempt. `0` disables the ack/retry machinery entirely.
    pub retry_timeout: SimTime,
    /// Retry budget per operation (and per query-retry round sequence).
    pub max_retries: u32,
    /// Interval between re-dispatch rounds for a query's unanswered
    /// plans/sub-queries. `0` disables query retries.
    pub query_retry_interval: SimTime,
    /// Interval between anti-entropy catalog exchanges with a round-robin
    /// neighbor (heals lost index/version/trigger floods). `0` disables.
    pub anti_entropy_interval: SimTime,
}

impl Default for MindConfig {
    fn default() -> Self {
        MindConfig {
            dac_cost: DacCostModel::default(),
            dac_batch_size: 64,
            query_deadline: 60 * SECONDS,
            hist_granularity: 64,
            cut_depth: 10,
            day_len: 86_400,
            auto_versioning: true,
            collect_grace: 10 * SECONDS,
            handoff_ttl: 3600 * SECONDS,
            retry_timeout: 5 * SECONDS,
            max_retries: 6,
            query_retry_interval: 8 * SECONDS,
            anti_entropy_interval: 45 * SECONDS,
        }
    }
}

/// One buffered storage request (the prototype's DAC queue entry).
#[derive(Debug)]
enum DacJob {
    Insert {
        index: String,
        version: u32,
        record: Record,
        sent_at: SimTime,
        is_replica: bool,
        /// Who to ack once applied (the insert origin, or the pushing
        /// primary for replica copies).
        acker: NodeId,
        /// Idempotency key (0 = legacy/unacked operation).
        op_id: u64,
    },
    Scan {
        query_id: u64,
        index: String,
        version: u32,
        code: BitCode,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
        origin: NodeId,
    },
}

/// Effects of a processed batch, released when its cost has elapsed.
#[derive(Debug, Default)]
struct BatchResult {
    sends: Vec<(NodeId, MindPayload)>,
    /// Query responses still carrying shared record handles. Kept out of
    /// `sends` so the local path (destination == this node) can feed the
    /// tracker directly; payloads are materialized into wire records only
    /// when the response actually leaves the node.
    responses: Vec<(NodeId, LocalResponse)>,
    /// `sent_at` of each primary insert in the batch (latency recorded at
    /// release time).
    insert_sent_ats: Vec<SimTime>,
}

/// A query response before the wire boundary: records are refcounted
/// handles into the local store, not copies.
#[derive(Debug)]
struct LocalResponse {
    query_id: u64,
    version: u32,
    code: BitCode,
    records: Vec<Arc<Record>>,
}

/// Where an unacked operation goes when re-sent.
#[derive(Debug, Clone)]
enum OpTarget {
    /// Re-route through the overlay toward a region code (inserts).
    Routed(BitCode),
    /// Re-send directly to a node (replica pushes).
    Direct(NodeId),
}

/// An insert/replica awaiting its ack (DESIGN.md §8).
#[derive(Debug)]
struct PendingOp {
    target: OpTarget,
    payload: MindPayload,
    attempts: u32,
}

/// What a query originator needs to re-dispatch unanswered work.
#[derive(Debug)]
struct QueryRetryMeta {
    index: String,
    rect: HyperRect,
    filters: Vec<CarriedFilter>,
    attempts: u32,
}

/// A sub-query waiting for the acceptor's historical records.
#[derive(Debug)]
struct PendingHandoff {
    query_id: u64,
    version: u32,
    code: BitCode,
    origin: NodeId,
    local: Vec<Arc<Record>>,
}

/// A complete MIND node.
pub struct MindNode {
    id: NodeId,
    cfg: MindConfig,
    overlay: Overlay<MindPayload>,
    indexes: HashMap<String, IndexState>,
    // DAC
    dac_queue: VecDeque<DacJob>,
    dac_busy: bool,
    batch_seq: u64,
    pending_batches: HashMap<u64, BatchResult>,
    // reliable delivery (DESIGN.md §8)
    op_seq: u64,
    pending_ops: HashMap<u64, PendingOp>,
    seen_ops: HashSet<u64>,
    anti_entropy_rr: u64,
    // queries
    query_seq: u64,
    /// In-flight and finished query trackers, by query id.
    pub queries: HashMap<u64, QueryTracker>,
    query_meta: HashMap<u64, QueryRetryMeta>,
    // join-time data handoff (Section 3.4)
    handoff: Option<(NodeId, SimTime)>,
    handoff_seq: u64,
    pending_handoffs: HashMap<u64, PendingHandoff>,
    // standing queries
    triggers: TriggerSet,
    trigger_seq: u64,
    /// Notifications received for triggers this node subscribed:
    /// `(trigger_id, storing node, record)`.
    pub trigger_log: Vec<(u64, NodeId, Record)>,
    // histogram collection (collector role)
    collect_seq: u64,
    collecting: HashMap<u64, (String, u64, GridHistogram, usize)>,
    collect_keys: HashMap<(String, u64), u64>,
    /// Metrics this node accumulated.
    pub metrics: NodeMetrics,
}

impl MindNode {
    /// A node on a statically constructed overlay.
    pub fn new_static(
        id: NodeId,
        code: BitCode,
        entries: Vec<mind_overlay::NeighborEntry>,
        overlay_cfg: OverlayConfig,
        cfg: MindConfig,
    ) -> Self {
        Self::with_overlay(id, Overlay::new_static(id, code, entries, overlay_cfg), cfg)
    }

    /// The first node of a dynamically grown overlay.
    pub fn new_root(id: NodeId, overlay_cfg: OverlayConfig, cfg: MindConfig) -> Self {
        Self::with_overlay(id, Overlay::new_root(id, overlay_cfg), cfg)
    }

    /// A node that joins through `bootstrap` at startup.
    pub fn new_joiner(
        id: NodeId,
        bootstrap: NodeId,
        overlay_cfg: OverlayConfig,
        cfg: MindConfig,
    ) -> Self {
        Self::with_overlay(id, Overlay::new_joiner(id, bootstrap, overlay_cfg), cfg)
    }

    fn with_overlay(id: NodeId, overlay: Overlay<MindPayload>, cfg: MindConfig) -> Self {
        MindNode {
            id,
            cfg,
            overlay,
            indexes: HashMap::new(),
            dac_queue: VecDeque::new(),
            dac_busy: false,
            batch_seq: 0,
            pending_batches: HashMap::new(),
            op_seq: 0,
            pending_ops: HashMap::new(),
            seen_ops: HashSet::new(),
            anti_entropy_rr: 0,
            query_seq: 0,
            queries: HashMap::new(),
            query_meta: HashMap::new(),
            handoff: None,
            handoff_seq: 0,
            pending_handoffs: HashMap::new(),
            triggers: TriggerSet::new(),
            trigger_seq: 0,
            trigger_log: Vec::new(),
            collect_seq: 0,
            collecting: HashMap::new(),
            collect_keys: HashMap::new(),
            metrics: NodeMetrics::default(),
        }
    }

    /// Discards state that cannot survive a crash: in-flight DAC jobs,
    /// query trackers (their deadline timers died with the old
    /// incarnation), handoff and collection protocols, and every in-memory
    /// row store. The index *catalog* (schemas, cut trees, version
    /// numbering) is kept — it is re-validated against the acceptor's
    /// catalog when the rejoin completes.
    fn reset_after_restart(&mut self) {
        self.dac_queue.clear();
        self.dac_busy = false;
        self.pending_batches.clear();
        self.pending_ops.clear();
        // Forget applied op ids too: the rows died with the stores, so a
        // retried op must be stored again, not deduped into data loss.
        self.seen_ops.clear();
        self.queries.clear();
        self.query_meta.clear();
        self.handoff = None;
        self.pending_handoffs.clear();
        self.collecting.clear();
        self.collect_keys.clear();
        for state in self.indexes.values_mut() {
            state.reset_stores();
        }
    }

    /// This node's transport address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The overlay component (read-only; for inspection).
    pub fn overlay(&self) -> &Overlay<MindPayload> {
        &self.overlay
    }

    /// Local state of an index, if created.
    pub fn index_state(&self, tag: &str) -> Option<&IndexState> {
        self.indexes.get(tag)
    }

    /// Tags of all indices known to this node.
    pub fn index_tags(&self) -> Vec<String> {
        let mut v: Vec<String> = self.indexes.keys().cloned().collect();
        v.sort();
        v
    }

    // ---- the MIND interface (Section 3.2) ----

    /// `create_index`: instantiates `schema` on every overlay node with
    /// version-0 cuts and the given replication level.
    pub fn create_index(
        &mut self,
        schema: mind_types::IndexSchema,
        cuts: CutTree,
        replication: Replication,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) -> Result<(), MindError> {
        if self.indexes.contains_key(&schema.tag) {
            return Err(MindError::IndexExists(schema.tag));
        }
        let events = self.overlay.flood(
            MindPayload::CreateIndex {
                schema,
                cuts,
                replication,
            },
            out,
        );
        self.process_events(0, events, out);
        Ok(())
    }

    /// `drop_index`: removes the index from every node.
    pub fn drop_index(
        &mut self,
        tag: &str,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) -> Result<(), MindError> {
        if !self.indexes.contains_key(tag) {
            return Err(MindError::UnknownIndex(tag.to_string()));
        }
        let events = self.overlay.flood(
            MindPayload::DropIndex {
                index: tag.to_string(),
            },
            out,
        );
        self.process_events(0, events, out);
        Ok(())
    }

    /// `insert_record`: validates the record, embeds it through the
    /// governing version's cuts, and routes it to its region owner.
    pub fn insert(
        &mut self,
        now: SimTime,
        index: &str,
        record: Record,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) -> Result<(), MindError> {
        let state = self
            .indexes
            .get(index)
            .ok_or_else(|| MindError::UnknownIndex(index.to_string()))?;
        let record = state.conform(record)?;
        let ts = state.record_ts(&record);
        let version = state.version_for_ts(ts);
        let cuts = &state.version(version).expect("version exists").cuts; // lint:allow(unwrap) version_for_ts returns an installed version
        let code = cuts.code_for_point(record.point(state.schema.indexed_dims));
        self.metrics.inserts_originated += 1;
        let op_id = self.next_op_id();
        let payload = MindPayload::Insert {
            index: index.to_string(),
            version,
            record,
            origin: self.id,
            sent_at: now,
            op_id,
        };
        self.track_op(op_id, OpTarget::Routed(code), payload.clone(), out);
        let events = self.overlay.route(now, code, payload, out);
        self.process_events(now, events, out);
        Ok(())
    }

    /// A fresh idempotency key, unique per origin (node id ∥ counter,
    /// within the 48-bit timer-argument budget).
    fn next_op_id(&mut self) -> u64 {
        // Pre-increment: the id 0 is reserved as the "no tracking" sentinel
        // (node 0's op 0 would otherwise collide with it and lose dedup).
        self.op_seq += 1;
        (((self.id.0 as u64) << 24) | (self.op_seq & 0xFF_FFFF)) & 0xFFFF_FFFF_FFFF
    }

    /// Registers an operation for ack tracking and arms its retry timer.
    fn track_op(
        &mut self,
        op_id: u64,
        target: OpTarget,
        payload: MindPayload,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) {
        if self.cfg.retry_timeout == 0 {
            return;
        }
        self.pending_ops.insert(
            op_id,
            PendingOp {
                target,
                payload,
                attempts: 0,
            },
        );
        out.set_timer(self.cfg.retry_timeout, token(KIND_OP_RETRY, op_id));
    }

    /// Re-sends an unacked operation, with exponential backoff, until the
    /// retry budget runs out.
    fn retry_op(&mut self, now: SimTime, op_id: u64, out: &mut Outbox<OverlayMsg<MindPayload>>) {
        let Some(op) = self.pending_ops.get_mut(&op_id) else {
            return; // acked in the meantime
        };
        if op.attempts >= self.cfg.max_retries {
            self.pending_ops.remove(&op_id);
            self.metrics.retries_exhausted += 1;
            return;
        }
        op.attempts += 1;
        let attempts = op.attempts;
        let payload = op.payload.clone();
        let target = op.target.clone();
        self.metrics.retries_sent += 1;
        match target {
            OpTarget::Routed(code) => {
                let events = self.overlay.route(now, code, payload, out);
                self.process_events(now, events, out);
            }
            OpTarget::Direct(node) => out.send(node, OverlayMsg::Direct { payload }),
        }
        out.set_timer(
            self.cfg.retry_timeout << attempts.min(6),
            token(KIND_OP_RETRY, op_id),
        );
    }

    /// `query_index`: issues a multi-dimensional range query with optional
    /// carried-attribute filters; returns the query id to poll.
    pub fn query(
        &mut self,
        now: SimTime,
        index: &str,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) -> Result<u64, MindError> {
        let state = self
            .indexes
            .get(index)
            .ok_or_else(|| MindError::UnknownIndex(index.to_string()))?;
        if rect.dims() != state.schema.indexed_dims {
            return Err(MindError::SchemaMismatch {
                index: index.to_string(),
                reason: format!(
                    "query has {} dims, index has {}",
                    rect.dims(),
                    state.schema.indexed_dims
                ),
            });
        }
        let time_range = state.schema.time_dim().map(|d| (rect.lo(d), rect.hi(d)));
        let versions = state.versions_for_range(time_range);
        let query_id = ((self.id.0 as u64) << 20) | (self.query_seq & 0xF_FFFF);
        self.query_seq += 1;
        let mut tracker = QueryTracker::new(index.to_string(), now, &versions);
        // Route one root query per overlapping version.
        let mut routed = Vec::new();
        for v in versions {
            // lint:allow(unwrap) versions_for_range returns installed versions
            match state.version(v).unwrap().cuts.query_prefix(&rect) {
                None => tracker.on_plan(now, v, vec![], None), // misses the domain
                Some(prefix) => routed.push((v, prefix)),
            }
        }
        self.queries.insert(query_id, tracker);
        self.query_meta.insert(
            query_id,
            QueryRetryMeta {
                index: index.to_string(),
                rect: rect.clone(),
                filters: filters.clone(),
                attempts: 0,
            },
        );
        for (v, prefix) in routed {
            let payload = MindPayload::RootQuery {
                query_id,
                index: index.to_string(),
                version: v,
                rect: rect.clone(),
                filters: filters.clone(),
                origin: self.id,
            };
            let events = self.overlay.route(now, prefix, payload, out);
            self.process_events(now, events, out);
        }
        if self.cfg.query_retry_interval > 0 {
            out.set_timer(
                self.cfg.query_retry_interval,
                token(KIND_QUERY_RETRY, query_id),
            );
        }
        out.set_timer(
            self.cfg.query_deadline,
            token(KIND_QUERY_DEADLINE, query_id),
        );
        Ok(query_id)
    }

    /// Re-drives a query's unanswered work: re-routes `RootQuery`s for
    /// versions whose plan never arrived and re-dispatches the expected
    /// sub-queries still missing answers. The tracker dedups whatever
    /// duplicate plans/responses this produces.
    fn retry_query(
        &mut self,
        now: SimTime,
        query_id: u64,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) {
        let Some((pending_versions, missing)) = self.queries.get(&query_id).and_then(|t| {
            if t.done() {
                None
            } else {
                let pending: Vec<u32> = t.plans_pending.iter().copied().collect();
                let missing: Vec<(u32, BitCode)> = t
                    .expected
                    .iter()
                    .filter(|k| !t.answered.contains(k))
                    .cloned()
                    .collect();
                Some((pending, missing))
            }
        }) else {
            self.query_meta.remove(&query_id);
            return;
        };
        let Some(meta) = self.query_meta.get_mut(&query_id) else {
            return;
        };
        if meta.attempts >= self.cfg.max_retries {
            return; // budget spent; the deadline timer will close the query
        }
        meta.attempts += 1;
        let index = meta.index.clone();
        let rect = meta.rect.clone();
        let filters = meta.filters.clone();
        if !pending_versions.is_empty() || !missing.is_empty() {
            self.metrics.query_retries += 1;
        }
        // Versions still missing their plan: re-route the root query.
        let mut reroutes = Vec::new();
        if let Some(state) = self.indexes.get(&index) {
            for v in pending_versions {
                reroutes.push((
                    v,
                    state
                        .version(v)
                        .and_then(|ver| ver.cuts.query_prefix(&rect)),
                ));
            }
        }
        for (v, prefix) in reroutes {
            match prefix {
                None => {
                    if let Some(t) = self.queries.get_mut(&query_id) {
                        t.on_plan(now, v, vec![], None);
                    }
                }
                Some(prefix) => {
                    let payload = MindPayload::RootQuery {
                        query_id,
                        index: index.clone(),
                        version: v,
                        rect: rect.clone(),
                        filters: filters.clone(),
                        origin: self.id,
                    };
                    let events = self.overlay.route(now, prefix, payload, out);
                    self.process_events(now, events, out);
                }
            }
        }
        // Announced but unanswered regions: re-dispatch their sub-queries.
        for (v, code) in missing {
            self.dispatch_subquery(
                now,
                query_id,
                index.clone(),
                v,
                code,
                rect.clone(),
                filters.clone(),
                self.id,
                out,
            );
        }
        out.set_timer(
            self.cfg.query_retry_interval,
            token(KIND_QUERY_RETRY, query_id),
        );
    }

    /// The outcome of a query, once [`QueryTracker::done`].
    pub fn query_outcome(&self, query_id: u64) -> Option<crate::query::QueryOutcome> {
        self.queries
            .get(&query_id)
            .filter(|t| t.done())
            .map(|t| t.outcome())
    }

    /// Ships the current day's histogram for `index` to the designated
    /// collector and resets the local accumulator (called at each day
    /// boundary — by the harness in experiments, mirroring how the
    /// paper's operators would schedule it).
    pub fn report_day_histogram(
        &mut self,
        now: SimTime,
        index: &str,
        day: u64,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) -> Result<(), MindError> {
        let state = self
            .indexes
            .get_mut(index)
            .ok_or_else(|| MindError::UnknownIndex(index.to_string()))?;
        let bounds = state.schema.bounds();
        let hist = std::mem::replace(
            &mut state.day_histogram,
            GridHistogram::new(bounds, self.cfg.hist_granularity),
        );
        let payload = MindPayload::HistReport {
            index: index.to_string(),
            day,
            reporter: self.id,
            hist,
        };
        let events = self.overlay.route(now, collector_code(), payload, out);
        self.process_events(now, events, out);
        Ok(())
    }

    /// Installs a standing query: any node that stores a matching primary
    /// record will notify this node directly (see [`crate::trigger`]).
    /// Returns the trigger id.
    pub fn create_trigger(
        &mut self,
        index: &str,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) -> Result<u64, MindError> {
        let state = self
            .indexes
            .get(index)
            .ok_or_else(|| MindError::UnknownIndex(index.to_string()))?;
        if rect.dims() != state.schema.indexed_dims {
            return Err(MindError::SchemaMismatch {
                index: index.to_string(),
                reason: format!(
                    "trigger has {} dims, index has {}",
                    rect.dims(),
                    state.schema.indexed_dims
                ),
            });
        }
        let trigger_id = ((self.id.0 as u64) << 20) | (self.trigger_seq & 0xF_FFFF);
        self.trigger_seq += 1;
        let trigger = Trigger {
            trigger_id,
            index: index.to_string(),
            rect,
            filters,
            origin: self.id,
        };
        let events = self
            .overlay
            .flood(MindPayload::CreateTrigger { trigger }, out);
        self.process_events(0, events, out);
        Ok(trigger_id)
    }

    /// Removes a standing query everywhere.
    pub fn drop_trigger(&mut self, trigger_id: u64, out: &mut Outbox<OverlayMsg<MindPayload>>) {
        let events = self
            .overlay
            .flood(MindPayload::DropTrigger { trigger_id }, out);
        self.process_events(0, events, out);
    }

    /// Drops every index version whose governed time range ends before
    /// `before_ts` — the version aging the paper defers ("the pointer
    /// will be dropped once the data have aged", Section 3.4/3.7).
    /// Returns the number of versions garbage-collected locally.
    pub fn gc_versions(&mut self, index: &str, before_ts: u64) -> Result<usize, MindError> {
        let state = self
            .indexes
            .get_mut(index)
            .ok_or_else(|| MindError::UnknownIndex(index.to_string()))?;
        Ok(state.gc_before(before_ts))
    }

    // ---- event plumbing ----

    fn process_events(
        &mut self,
        now: SimTime,
        events: Vec<OverlayEvent<MindPayload>>,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) {
        for ev in events {
            match ev {
                OverlayEvent::Delivered {
                    target: _,
                    hops,
                    payload,
                } => {
                    self.on_routed(now, hops, payload, out);
                }
                OverlayEvent::DirectDelivered { from, payload } => {
                    self.on_direct(now, from, payload, out);
                }
                OverlayEvent::FloodDelivered { payload } => self.on_flood(payload),
                OverlayEvent::Undeliverable { target, .. } => {
                    self.metrics.undeliverable += 1;
                    if self.metrics.undeliverable_targets.len() < 64 {
                        self.metrics.undeliverable_targets.push(target);
                    }
                }
                OverlayEvent::Joined { acceptor, .. } => {
                    // Section 3.4: fetch the index catalog from the node
                    // we attached to, and keep a pointer to it for the
                    // region's historical data until it ages.
                    self.handoff = Some((acceptor, now));
                    out.send(
                        acceptor,
                        OverlayMsg::Direct {
                            payload: MindPayload::CatalogRequest,
                        },
                    );
                }
                OverlayEvent::CodeChanged { .. }
                | OverlayEvent::TookOver { .. }
                | OverlayEvent::NeighborFailed { .. } => {}
            }
        }
    }

    fn on_flood(&mut self, payload: MindPayload) {
        match payload {
            MindPayload::CreateIndex {
                schema,
                cuts,
                replication,
            } => {
                let tag = schema.tag.clone();
                self.indexes.entry(tag).or_insert_with(|| {
                    IndexState::new(schema, cuts, replication, self.cfg.hist_granularity)
                });
            }
            MindPayload::NewVersion {
                index,
                version,
                from_ts,
                cuts,
            } => {
                if let Some(state) = self.indexes.get_mut(&index) {
                    state.install_version(version, from_ts, cuts);
                }
            }
            MindPayload::DropIndex { index } => {
                self.indexes.remove(&index);
                self.triggers.remove_index(&index);
            }
            MindPayload::CreateTrigger { trigger } => {
                self.triggers.install(trigger);
            }
            MindPayload::DropTrigger { trigger_id } => {
                self.triggers.remove(trigger_id);
            }
            _ => {}
        }
    }

    fn on_routed(
        &mut self,
        now: SimTime,
        hops: u32,
        payload: MindPayload,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) {
        match payload {
            MindPayload::Insert {
                index,
                version,
                record,
                origin,
                sent_at,
                op_id,
            } => {
                // Already applied (this is a retry whose ack was lost, or
                // a network duplicate): re-ack without touching the DAC.
                if op_id != 0 && self.seen_ops.contains(&op_id) {
                    self.metrics.dup_ops_ignored += 1;
                    self.send_ack(origin, op_id, out);
                    return;
                }
                self.metrics.insert_hops.push(hops);
                self.enqueue(
                    now,
                    DacJob::Insert {
                        index,
                        version,
                        record,
                        sent_at,
                        is_replica: false,
                        acker: origin,
                        op_id,
                    },
                    out,
                );
            }
            MindPayload::RootQuery {
                query_id,
                index,
                version,
                rect,
                filters,
                origin,
            } => {
                self.split_root_query(now, query_id, &index, version, rect, filters, origin, out);
            }
            MindPayload::SubQuery {
                query_id,
                index,
                version,
                code,
                rect,
                filters,
                origin,
            } => {
                self.on_subquery(
                    now, query_id, index, version, code, rect, filters, origin, out,
                );
            }
            MindPayload::HistReport {
                index,
                day,
                reporter: _,
                hist,
            } => {
                self.on_hist_report(now, index, day, hist, out);
            }
            other => {
                debug_assert!(false, "unexpected routed payload: {other:?}");
            }
        }
    }

    fn on_direct(
        &mut self,
        now: SimTime,
        from: NodeId,
        payload: MindPayload,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) {
        match payload {
            MindPayload::Replica {
                index,
                version,
                record,
                op_id,
            } => {
                if op_id != 0 && self.seen_ops.contains(&op_id) {
                    self.metrics.dup_ops_ignored += 1;
                    self.send_ack(from, op_id, out);
                    return;
                }
                // Replica writes skip latency metrics and histogram
                // accounting but share the DAC (they cost real work).
                self.enqueue(
                    now,
                    DacJob::Insert {
                        index,
                        version,
                        record,
                        sent_at: now,
                        is_replica: true,
                        acker: from,
                        op_id,
                    },
                    out,
                );
            }
            MindPayload::Ack { op_id } => {
                if self.pending_ops.remove(&op_id).is_some() {
                    self.metrics.acks_received += 1;
                }
            }
            MindPayload::TriggerFired {
                trigger_id,
                at,
                record,
            } => {
                self.trigger_log.push((trigger_id, at, record));
            }
            MindPayload::CatalogRequest => {
                let indexes: Vec<IndexDef> = self
                    .indexes
                    .values()
                    .map(|st| IndexDef {
                        schema: st.schema.clone(),
                        replication: st.replication,
                        versions: st
                            .versions
                            .iter()
                            .map(|v| (v.from_ts, v.cuts.clone()))
                            .collect(),
                    })
                    .collect();
                out.send(
                    from,
                    OverlayMsg::Direct {
                        payload: MindPayload::CatalogResponse {
                            indexes,
                            triggers: self.triggers.all(),
                        },
                    },
                );
            }
            MindPayload::CatalogResponse { indexes, triggers } => {
                for def in indexes {
                    let tag = def.schema.tag.clone();
                    let state = self.indexes.entry(tag).or_insert_with(|| {
                        let mut it = def.versions.iter();
                        let (_, first_cuts) = it.next().expect("at least version 0").clone(); // lint:allow(unwrap) catalog entries always carry version 0
                        IndexState::new(
                            def.schema.clone(),
                            first_cuts,
                            def.replication,
                            self.cfg.hist_granularity,
                        )
                    });
                    for (v, (from_ts, cuts)) in def.versions.into_iter().enumerate() {
                        state.install_version(v as u32, from_ts, cuts);
                    }
                }
                for t in triggers {
                    self.triggers.install(t);
                }
            }
            MindPayload::HandoffScan {
                handoff_id,
                index,
                version,
                code,
                rect,
                filters,
            } => {
                // Scan our retained historical rows for the joiner's
                // region — primaries only: replica copies there are echoes
                // of rows whose primaries already answer elsewhere (e.g.
                // the joiner's own post-join inserts replicated back to
                // us, its sibling).
                let records = self.run_scan(&index, version, &code, &rect, &filters, true);
                out.send(
                    from,
                    OverlayMsg::Direct {
                        payload: MindPayload::HandoffRecords {
                            handoff_id,
                            records: Self::to_wire(&records),
                        },
                    },
                );
            }
            MindPayload::HandoffRecords {
                handoff_id,
                records,
            } => {
                if let Some(p) = self.pending_handoffs.remove(&handoff_id) {
                    let mut merged = p.local;
                    merged.extend(records.into_iter().map(Arc::new));
                    self.deliver_response(
                        now,
                        p.origin,
                        LocalResponse {
                            query_id: p.query_id,
                            version: p.version,
                            code: p.code,
                            records: merged,
                        },
                        out,
                    );
                }
            }
            MindPayload::QueryPlan {
                query_id,
                version,
                codes,
                replaces,
            } => {
                if let Some(t) = self.queries.get_mut(&query_id) {
                    t.on_plan(now, version, codes, replaces);
                }
            }
            MindPayload::QueryResponse {
                query_id,
                version,
                code,
                responder,
                records,
            } => {
                if std::env::var_os("MIND_TRACE").is_some() && !records.is_empty() {
                    eprintln!(
                        "[resp] q{query_id} v{version} code={code} from {responder}: {} records",
                        records.len()
                    );
                }
                if let Some(t) = self.queries.get_mut(&query_id) {
                    // Arriving off the wire: wrap into shared handles once.
                    t.on_response(
                        now,
                        version,
                        code,
                        responder,
                        records.into_iter().map(Arc::new).collect(),
                    );
                }
            }
            other => {
                debug_assert!(false, "unexpected direct payload: {other:?}");
            }
        }
    }

    /// Section 3.6: the first node whose region abuts the query splits it
    /// into per-region sub-queries, announces the plan to the originator,
    /// answers its own regions, and routes the rest.
    #[allow(clippy::too_many_arguments)]
    fn split_root_query(
        &mut self,
        now: SimTime,
        query_id: u64,
        index: &str,
        version: u32,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
        origin: NodeId,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) {
        let Some(state) = self.indexes.get(index) else {
            // Index unknown here (flood race): report an empty plan so the
            // originator is not left hanging.
            out.send(
                origin,
                OverlayMsg::Direct {
                    payload: MindPayload::QueryPlan {
                        query_id,
                        version,
                        codes: vec![],
                        replaces: None,
                    },
                },
            );
            return;
        };
        let Some(ver) = state.version(version) else {
            out.send(
                origin,
                OverlayMsg::Direct {
                    payload: MindPayload::QueryPlan {
                        query_id,
                        version,
                        codes: vec![],
                        replaces: None,
                    },
                },
            );
            return;
        };
        // Split down to at least this node's code length so that, on a
        // balanced overlay, every sub-query maps to one node. Deeper nodes
        // refine further on arrival (see `on_subquery`).
        let min_len = self.overlay.code().map(|c| c.len()).unwrap_or(0);
        let codes = ver.cuts.covering_codes_at_least(&rect, min_len);
        out.send(
            origin,
            OverlayMsg::Direct {
                payload: MindPayload::QueryPlan {
                    query_id,
                    version,
                    codes: codes.clone(),
                    replaces: None,
                },
            },
        );
        for code in codes {
            self.dispatch_subquery(
                now,
                query_id,
                index.to_string(),
                version,
                code,
                rect.clone(),
                filters.clone(),
                origin,
                out,
            );
        }
    }

    /// Routes a sub-query to its region owner, or processes it here when
    /// this node is responsible.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_subquery(
        &mut self,
        now: SimTime,
        query_id: u64,
        index: String,
        version: u32,
        code: BitCode,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
        origin: NodeId,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) {
        if self.overlay.should_answer(&code) {
            self.on_subquery(
                now, query_id, index, version, code, rect, filters, origin, out,
            );
        } else {
            let payload = MindPayload::SubQuery {
                query_id,
                index,
                version,
                code,
                rect,
                filters,
                origin,
            };
            let events = self.overlay.route(now, code, payload, out);
            self.process_events(now, events, out);
        }
    }

    /// Handles a sub-query arriving at (or dispatched to) this node.
    ///
    /// If this node's code strictly extends the region code, the region
    /// spans several nodes (unbalanced overlay): split it one level,
    /// announce the refinement atomically to the originator, and dispatch
    /// the halves. Otherwise answer it from the local store.
    #[allow(clippy::too_many_arguments)]
    fn on_subquery(
        &mut self,
        now: SimTime,
        query_id: u64,
        index: String,
        version: u32,
        code: BitCode,
        rect: HyperRect,
        filters: Vec<CarriedFilter>,
        origin: NodeId,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) {
        let my_code = self.overlay.code();
        let must_refine = match my_code {
            Some(mine) => code.is_prefix_of(&mine) && code.len() < mine.len(),
            None => false,
        };
        // Refinement requires the cut tree to be deeper than the region
        // code; a leaf region is answered whole (the tree depth is always
        // configured above the overlay depth, see MindConfig::cut_depth).
        let can_refine = self
            .indexes
            .get(&index)
            .and_then(|s| s.version(version))
            .map(|v| v.cuts.depth() > code.len())
            .unwrap_or(false);
        if must_refine && can_refine {
            let children = vec![code.child(false), code.child(true)];
            out.send(
                origin,
                OverlayMsg::Direct {
                    payload: MindPayload::QueryPlan {
                        query_id,
                        version,
                        codes: children.clone(),
                        replaces: Some(code),
                    },
                },
            );
            for child in children {
                self.dispatch_subquery(
                    now,
                    query_id,
                    index.clone(),
                    version,
                    child,
                    rect.clone(),
                    filters.clone(),
                    origin,
                    out,
                );
            }
            return;
        }
        self.enqueue(
            now,
            DacJob::Scan {
                query_id,
                index,
                version,
                code,
                rect,
                filters,
                origin,
            },
            out,
        );
    }

    fn on_hist_report(
        &mut self,
        _now: SimTime,
        index: String,
        day: u64,
        hist: GridHistogram,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) {
        if !self.cfg.auto_versioning {
            return;
        }
        let key = (index.clone(), day);
        let seq = *self.collect_keys.entry(key).or_insert_with(|| {
            let s = self.collect_seq;
            self.collect_seq += 1;
            s
        });
        match self.collecting.get_mut(&seq) {
            Some((_, _, acc, n)) => {
                acc.merge(&hist);
                *n += 1;
            }
            None => {
                // First report for this (index, day): arm the grace timer.
                out.set_timer(self.cfg.collect_grace, token(KIND_COLLECT, seq));
                self.collecting.insert(seq, (index, day, hist, 1));
            }
        }
    }

    fn finish_collection(&mut self, seq: u64, out: &mut Outbox<OverlayMsg<MindPayload>>) {
        let Some((index, day, hist, _reports)) = self.collecting.remove(&seq) else {
            return;
        };
        self.collect_keys.remove(&(index.clone(), day));
        let Some(state) = self.indexes.get(&index) else {
            return;
        };
        let bounds = state.schema.bounds();
        let cuts = CutTree::balanced_from_histogram(bounds, self.cfg.cut_depth, &hist);
        let version = state.versions.len() as u32;
        let from_ts = (day + 1) * self.cfg.day_len;
        let events = self.overlay.flood(
            MindPayload::NewVersion {
                index,
                version,
                from_ts,
                cuts,
            },
            out,
        );
        self.process_events(0, events, out);
    }

    // ---- the DAC (Section 3.9) ----

    fn enqueue(&mut self, _now: SimTime, job: DacJob, out: &mut Outbox<OverlayMsg<MindPayload>>) {
        self.dac_queue.push_back(job);
        if !self.dac_busy {
            self.dac_busy = true;
            out.set_timer(1, token(KIND_DAC_TICK, 0));
        }
    }

    fn dac_tick(&mut self, now: SimTime, out: &mut Outbox<OverlayMsg<MindPayload>>) {
        if self.dac_queue.is_empty() {
            self.dac_busy = false;
            return;
        }
        let cost_model = self.cfg.dac_cost;
        let mut cost: SimTime = cost_model.batch_overhead;
        let mut result = BatchResult::default();
        for _ in 0..self.cfg.dac_batch_size {
            let Some(job) = self.dac_queue.pop_front() else {
                break;
            };
            match job {
                DacJob::Insert {
                    index,
                    version,
                    record,
                    sent_at,
                    is_replica,
                    acker,
                    op_id,
                } => {
                    cost += cost_model.per_insert;
                    let applied = self.apply_insert(
                        &index,
                        version,
                        record,
                        is_replica,
                        acker,
                        op_id,
                        &mut result,
                    );
                    if applied && !is_replica {
                        result.insert_sent_ats.push(sent_at);
                    }
                }
                DacJob::Scan {
                    query_id,
                    index,
                    version,
                    code,
                    rect,
                    filters,
                    origin,
                } => {
                    let records = self.run_scan(&index, version, &code, &rect, &filters, false);
                    cost += cost_model.per_query + cost_model.per_result * records.len() as SimTime;
                    self.metrics.subqueries_answered += 1;
                    // Fresh joiner: the region's historical rows still live
                    // at the acceptor (Section 3.4). Merge its answer with
                    // ours before responding.
                    if let Some((sibling, joined_at)) = self.handoff {
                        if now.saturating_sub(joined_at) < self.cfg.handoff_ttl {
                            let handoff_id = self.handoff_seq;
                            self.handoff_seq += 1;
                            self.pending_handoffs.insert(
                                handoff_id,
                                PendingHandoff {
                                    query_id,
                                    version,
                                    code,
                                    origin,
                                    local: records,
                                },
                            );
                            result.sends.push((
                                sibling,
                                MindPayload::HandoffScan {
                                    handoff_id,
                                    index,
                                    version,
                                    code,
                                    rect,
                                    filters,
                                },
                            ));
                            continue;
                        }
                        self.handoff = None; // aged out
                    }
                    result.responses.push((
                        origin,
                        LocalResponse {
                            query_id,
                            version,
                            code,
                            records,
                        },
                    ));
                }
            }
        }
        let batch_id = self.batch_seq;
        self.batch_seq += 1;
        self.pending_batches.insert(batch_id, result);
        // Results (and the next batch) are released when this batch's
        // processing time has elapsed — storage work is not interleaved
        // with network transmission, exactly as in the prototype.
        let _ = now;
        out.set_timer(cost.max(1), token(KIND_BATCH, batch_id));
    }

    /// Queues an `Ack` for direct delivery (loopback-safe via
    /// `release_batch`'s short-circuit when sent through a batch).
    fn send_ack(&mut self, to: NodeId, op_id: u64, out: &mut Outbox<OverlayMsg<MindPayload>>) {
        if to == self.id {
            if self.pending_ops.remove(&op_id).is_some() {
                self.metrics.acks_received += 1;
            }
        } else {
            out.send(
                to,
                OverlayMsg::Direct {
                    payload: MindPayload::Ack { op_id },
                },
            );
        }
    }

    /// Applies one insert (primary or replica). Returns `true` when the
    /// record was actually stored. The ack is emitted *only* on success
    /// or on a detected duplicate — an insert that cannot be applied yet
    /// (index/version unknown here, e.g. a lost flood) stays unacked so
    /// the origin's retry can land once the catalog heals.
    #[allow(clippy::too_many_arguments)]
    fn apply_insert(
        &mut self,
        index: &str,
        version: u32,
        record: Record,
        is_replica: bool,
        acker: NodeId,
        op_id: u64,
        result: &mut BatchResult,
    ) -> bool {
        if op_id != 0 && self.seen_ops.contains(&op_id) {
            // A duplicate that slipped into the queue behind the first
            // copy (network duplication or an early retry): ack, don't
            // double-store.
            self.metrics.dup_ops_ignored += 1;
            result.sends.push((acker, MindPayload::Ack { op_id }));
            return false;
        }
        let Some(state) = self.indexes.get_mut(index) else {
            return false;
        };
        let dims = state.schema.indexed_dims;
        let replication = state.replication;
        if state.version_mut(version).is_none() {
            return false;
        }
        if !is_replica {
            state.day_histogram.add(record.point(dims));
            // Standing queries fire the moment the primary copy lands.
            for (trigger_id, origin) in self.triggers.fired(index, &record, dims) {
                result.sends.push((
                    origin,
                    MindPayload::TriggerFired {
                        trigger_id,
                        at: self.id,
                        record: record.clone(),
                    },
                ));
            }
        }
        if op_id != 0 {
            self.seen_ops.insert(op_id);
            result.sends.push((acker, MindPayload::Ack { op_id }));
        }
        // Push replicas to the prefix neighbors that would take over
        // (cloned per target — these cross the wire), then store the
        // original record by move: the local insert never copies it.
        if !is_replica {
            let targets = match replication {
                Replication::None => Vec::new(),
                Replication::Level(m) => self.overlay.replica_targets(m as usize),
                Replication::Full => self.overlay.all_neighbor_targets(),
            };
            for t in targets {
                let rep_op = self.next_op_id();
                result.sends.push((
                    t,
                    MindPayload::Replica {
                        index: index.to_string(),
                        version,
                        record: record.clone(),
                        op_id: rep_op,
                    },
                ));
            }
        }
        let state = self.indexes.get_mut(index).expect("checked above"); // lint:allow(unwrap) presence checked above
        let ver = state.version_mut(version).expect("checked above"); // lint:allow(unwrap) presence checked above
        if is_replica {
            ver.replica_rows += 1;
            ver.replicas.insert(record);
        } else {
            ver.primary_rows += 1;
            ver.primary.insert(record);
        }
        true
    }

    /// Answers a sub-query from the local store. Zero-copy: the returned
    /// records are shared handles into the store's record heap — nothing
    /// is materialized until (unless) the response crosses the wire.
    fn run_scan(
        &mut self,
        index: &str,
        version: u32,
        code: &BitCode,
        rect: &HyperRect,
        filters: &[CarriedFilter],
        primary_only: bool,
    ) -> Vec<Arc<Record>> {
        let Some(state) = self.indexes.get_mut(index) else {
            return Vec::new();
        };
        let Some(ver) = state.version_mut(version) else {
            return Vec::new();
        };
        // Clip to the sub-query's region so that (a) covering regions
        // never overlap and (b) replica rows are only returned by the node
        // that took the region over.
        let region = ver.cuts.rect_for_code(code);
        let Some(clip) = region.intersection(rect) else {
            return Vec::new();
        };
        let accept = |r: &Arc<Record>| filters.iter().all(|f| f.accepts(r));
        let mut out: Vec<Arc<Record>> = ver
            .primary
            .range_records(&clip)
            .into_iter()
            .filter(accept)
            .collect();
        if !primary_only {
            out.extend(ver.replicas.range_records(&clip).into_iter().filter(accept));
        }
        self.metrics.records_served += out.len() as u64;
        out
    }

    /// Copies shared record handles into owned records — the one place a
    /// scan result is materialized, and only for payloads leaving the node.
    fn to_wire(records: &[Arc<Record>]) -> Vec<Record> {
        records.iter().map(|r| (**r).clone()).collect()
    }

    /// Routes a scan answer to its originator. When the originator is this
    /// node (the paper's common single-node query case) the tracker is fed
    /// the shared handles directly — no payload copy, no message; only a
    /// remote originator costs a wire materialization.
    fn deliver_response(
        &mut self,
        now: SimTime,
        dest: NodeId,
        resp: LocalResponse,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) {
        if dest == self.id {
            if let Some(t) = self.queries.get_mut(&resp.query_id) {
                t.on_response(now, resp.version, resp.code, self.id, resp.records);
            }
        } else {
            out.send(
                dest,
                OverlayMsg::Direct {
                    payload: MindPayload::QueryResponse {
                        query_id: resp.query_id,
                        version: resp.version,
                        code: resp.code,
                        responder: self.id,
                        records: Self::to_wire(&resp.records),
                    },
                },
            );
        }
    }

    fn release_batch(
        &mut self,
        now: SimTime,
        batch_id: u64,
        out: &mut Outbox<OverlayMsg<MindPayload>>,
    ) {
        if let Some(result) = self.pending_batches.remove(&batch_id) {
            for sent_at in result.insert_sent_ats {
                self.metrics
                    .insert_latencies
                    .push((now, now.saturating_sub(sent_at)));
            }
            for (dest, resp) in result.responses {
                self.deliver_response(now, dest, resp, out);
            }
            for (dest, payload) in result.sends {
                if dest == self.id {
                    // Loopback shortcut (e.g. responding to our own query).
                    self.on_direct(now, self.id, payload, out);
                } else {
                    // Replica pushes leave through here exactly once — arm
                    // their ack/retry tracking at actual transmission time.
                    if let MindPayload::Replica { op_id, .. } = &payload {
                        if *op_id != 0 {
                            self.track_op(*op_id, OpTarget::Direct(dest), payload.clone(), out);
                        }
                    }
                    out.send(dest, OverlayMsg::Direct { payload });
                }
            }
        }
        if self.dac_queue.is_empty() {
            self.dac_busy = false;
        } else {
            out.set_timer(1, token(KIND_DAC_TICK, 0));
        }
    }

    /// Pending (unprocessed) DAC requests — the Figure 11 hotspot signal.
    pub fn dac_pending(&self) -> usize {
        self.dac_queue.len()
    }
}

impl NodeLogic for MindNode {
    type Msg = OverlayMsg<MindPayload>;

    fn on_start(&mut self, now: SimTime, out: &mut Outbox<Self::Msg>) {
        if self.overlay.on_start(now, out) {
            self.reset_after_restart();
        }
        if self.cfg.anti_entropy_interval > 0 {
            out.set_timer(self.cfg.anti_entropy_interval, token(KIND_ANTI_ENTROPY, 0));
        }
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: Self::Msg,
        out: &mut Outbox<Self::Msg>,
    ) {
        let events = self.overlay.handle(now, from, msg, out);
        self.process_events(now, events, out);
    }

    fn on_timer(&mut self, now: SimTime, tok: u64, out: &mut Outbox<Self::Msg>) {
        if let Some(events) = self.overlay.on_timer(now, tok, out) {
            self.process_events(now, events, out);
            return;
        }
        if tok & (0xFF << 56) != TOKEN_TAG {
            return;
        }
        let kind = (tok >> 48) & 0xFF;
        let arg = tok & 0xFFFF_FFFF_FFFF;
        match kind {
            KIND_DAC_TICK => self.dac_tick(now, out),
            KIND_BATCH => self.release_batch(now, arg, out),
            KIND_QUERY_DEADLINE => {
                self.query_meta.remove(&arg);
                if let Some(t) = self.queries.get_mut(&arg) {
                    t.on_deadline();
                }
            }
            KIND_COLLECT => self.finish_collection(arg, out),
            KIND_OP_RETRY => self.retry_op(now, arg, out),
            KIND_QUERY_RETRY => self.retry_query(now, arg, out),
            KIND_ANTI_ENTROPY => {
                // Periodically reconcile the index/trigger catalog with one
                // neighbor (round-robin): heals CreateIndex/NewVersion/
                // CreateTrigger floods lost to the network, since
                // CatalogResponse installation is idempotent.
                let peers = self.overlay.all_neighbor_targets();
                if !peers.is_empty() {
                    let pick = peers[(self.anti_entropy_rr as usize) % peers.len()];
                    self.anti_entropy_rr += 1;
                    out.send(
                        pick,
                        OverlayMsg::Direct {
                            payload: MindPayload::CatalogRequest,
                        },
                    );
                }
                out.set_timer(self.cfg.anti_entropy_interval, token(KIND_ANTI_ENTROPY, 0));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_scheme_disjoint_from_overlay() {
        // Overlay tokens are tagged 0xA5; ours 0xB6.
        let t = token(KIND_DAC_TICK, 0);
        assert_eq!(t >> 56, 0xB6);
    }

    #[test]
    fn collector_code_is_all_zeros() {
        let c = collector_code();
        assert!(c.iter_bits().all(|b| !b));
    }
}
