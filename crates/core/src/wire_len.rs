//! Exact serialized-size accounting for wire payloads.
//!
//! The simulator charges bandwidth per message via
//! [`WireSize`](mind_types::WireSize); historically those numbers were
//! flat per-variant estimates (`64 + record bytes`), which drifts from
//! what `mind_net::wire` actually puts on a real socket — and a batched
//! insert's whole point is amortizing *real* framing bytes, so its
//! accounting has to be real too.
//!
//! [`serialized_len`] is a counting-only `serde::Serializer` that mirrors
//! the `mind-net` codec's layout rules byte for byte without materializing
//! a buffer:
//!
//! * fixed-width primitives as-is; `bool` as one byte,
//! * `str` / `bytes`: `u32` length + raw bytes,
//! * `Option`: 1-byte tag,
//! * sequences and maps: `u32` length + elements,
//! * structs and tuples: fields in declaration order, no framing,
//! * enums: `u32` variant index + variant content.
//!
//! `mind-core` cannot depend on `mind-net` (the dependency points the
//! other way), so the mirror lives here; the `wire_size_is_exact` test in
//! `mind-net` pins the two implementations against each other for every
//! `MindPayload` kind, so any layout change in either file fails CI
//! instead of silently skewing the bandwidth model.

use serde::ser::{
    SerializeMap, SerializeSeq, SerializeStruct, SerializeStructVariant, SerializeTuple,
    SerializeTupleStruct, SerializeTupleVariant,
};
use serde::Serialize;
use std::fmt;

/// Exact number of bytes `mind_net::wire::to_bytes(v)` would produce.
///
/// The only failure modes of the codec are unknown-length sequences and
/// lengths above `u32::MAX`, neither of which any MIND payload produces;
/// should one ever appear, this debug-asserts and returns the bytes
/// counted up to the error (an under-estimate, never a panic in release).
pub fn serialized_len<T: Serialize + ?Sized>(v: &T) -> usize {
    let mut counter = Counter { n: 0 };
    let r = v.serialize(&mut counter);
    debug_assert!(r.is_ok(), "uncountable wire payload: {r:?}");
    counter.n
}

/// FNV-1a digest of the exact byte stream the codec layout defines for
/// `v` — the hashing sibling of [`serialized_len`], streaming the same
/// bytes into the hash instead of counting them. Two nodes that would
/// put identical bytes on the wire produce identical digests, which is
/// what the anti-entropy catalog exchange compares (DESIGN.md §16).
pub fn fnv1a_digest<T: Serialize + ?Sized>(v: &T) -> u64 {
    let mut d = Digest::new();
    d.absorb(v);
    d.finish()
}

/// A streaming FNV-1a hash over the codec byte layout. Callers can
/// absorb several values in sequence (the catalog digest streams every
/// index and trigger through one `Digest` without materializing a
/// response message).
pub(crate) struct Digest {
    h: u64,
}

impl Digest {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Digest {
            h: Self::FNV_OFFSET,
        }
    }

    /// Folds `v`'s codec bytes into the hash.
    pub(crate) fn absorb<T: Serialize + ?Sized>(&mut self, v: &T) {
        let r = v.serialize(&mut *self);
        debug_assert!(r.is_ok(), "undigestable wire payload: {r:?}");
    }

    pub(crate) fn finish(&self) -> u64 {
        self.h
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h = (self.h ^ b as u64).wrapping_mul(Self::FNV_PRIME);
        }
    }
}

/// Counting failed — mirrors the codec's error cases.
#[derive(Debug)]
pub struct LenError(String);

impl fmt::Display for LenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire length error: {}", self.0)
    }
}

impl std::error::Error for LenError {}

impl serde::ser::Error for LenError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        LenError(msg.to_string())
    }
}

struct Counter {
    n: usize,
}

impl serde::Serializer for &mut Counter {
    type Ok = ();
    type Error = LenError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, _v: bool) -> Result<(), LenError> {
        self.n += 1;
        Ok(())
    }
    fn serialize_i8(self, _v: i8) -> Result<(), LenError> {
        self.n += 1;
        Ok(())
    }
    fn serialize_i16(self, _v: i16) -> Result<(), LenError> {
        self.n += 2;
        Ok(())
    }
    fn serialize_i32(self, _v: i32) -> Result<(), LenError> {
        self.n += 4;
        Ok(())
    }
    fn serialize_i64(self, _v: i64) -> Result<(), LenError> {
        self.n += 8;
        Ok(())
    }
    fn serialize_u8(self, _v: u8) -> Result<(), LenError> {
        self.n += 1;
        Ok(())
    }
    fn serialize_u16(self, _v: u16) -> Result<(), LenError> {
        self.n += 2;
        Ok(())
    }
    fn serialize_u32(self, _v: u32) -> Result<(), LenError> {
        self.n += 4;
        Ok(())
    }
    fn serialize_u64(self, _v: u64) -> Result<(), LenError> {
        self.n += 8;
        Ok(())
    }
    fn serialize_f32(self, _v: f32) -> Result<(), LenError> {
        self.n += 4;
        Ok(())
    }
    fn serialize_f64(self, _v: f64) -> Result<(), LenError> {
        self.n += 8;
        Ok(())
    }
    fn serialize_char(self, _v: char) -> Result<(), LenError> {
        self.n += 4;
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), LenError> {
        self.serialize_bytes(v.as_bytes())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), LenError> {
        u32::try_from(v.len()).map_err(|_| LenError("bytes too long".into()))?;
        self.n += 4 + v.len();
        Ok(())
    }
    fn serialize_none(self) -> Result<(), LenError> {
        self.n += 1;
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), LenError> {
        self.n += 1;
        v.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), LenError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), LenError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), LenError> {
        self.n += 4;
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        v: &T,
    ) -> Result<(), LenError> {
        v.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        v: &T,
    ) -> Result<(), LenError> {
        self.n += 4;
        v.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, LenError> {
        let len = len.ok_or_else(|| LenError("sequences must know their length".into()))?;
        u32::try_from(len).map_err(|_| LenError("sequence too long".into()))?;
        self.n += 4;
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, LenError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, LenError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, LenError> {
        self.n += 4;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, LenError> {
        let len = len.ok_or_else(|| LenError("maps must know their length".into()))?;
        u32::try_from(len).map_err(|_| LenError("map too long".into()))?;
        self.n += 4;
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, LenError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, LenError> {
        self.n += 4;
        Ok(self)
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

// The compound traits are pure pass-through for both the counter and
// the digest: elements serialize through the parent serializer.
macro_rules! passthrough_compound {
    ($ty:ident: $trait_:ident, $method:ident) => {
        impl $trait_ for &mut $ty {
            type Ok = ();
            type Error = LenError;
            fn $method<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), LenError> {
                v.serialize(&mut **self)
            }
            fn end(self) -> Result<(), LenError> {
                Ok(())
            }
        }
    };
}

macro_rules! passthrough_named_compound {
    ($ty:ident) => {
        impl SerializeStruct for &mut $ty {
            type Ok = ();
            type Error = LenError;
            fn serialize_field<T: Serialize + ?Sized>(
                &mut self,
                _key: &'static str,
                v: &T,
            ) -> Result<(), LenError> {
                v.serialize(&mut **self)
            }
            fn end(self) -> Result<(), LenError> {
                Ok(())
            }
        }

        impl SerializeStructVariant for &mut $ty {
            type Ok = ();
            type Error = LenError;
            fn serialize_field<T: Serialize + ?Sized>(
                &mut self,
                _key: &'static str,
                v: &T,
            ) -> Result<(), LenError> {
                v.serialize(&mut **self)
            }
            fn end(self) -> Result<(), LenError> {
                Ok(())
            }
        }

        impl SerializeMap for &mut $ty {
            type Ok = ();
            type Error = LenError;
            fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), LenError> {
                key.serialize(&mut **self)
            }
            fn serialize_value<T: Serialize + ?Sized>(
                &mut self,
                value: &T,
            ) -> Result<(), LenError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), LenError> {
                Ok(())
            }
        }
    };
}

passthrough_compound!(Counter: SerializeSeq, serialize_element);
passthrough_compound!(Counter: SerializeTuple, serialize_element);
passthrough_compound!(Counter: SerializeTupleStruct, serialize_field);
passthrough_compound!(Counter: SerializeTupleVariant, serialize_field);
passthrough_named_compound!(Counter);

passthrough_compound!(Digest: SerializeSeq, serialize_element);
passthrough_compound!(Digest: SerializeTuple, serialize_element);
passthrough_compound!(Digest: SerializeTupleStruct, serialize_field);
passthrough_compound!(Digest: SerializeTupleVariant, serialize_field);
passthrough_named_compound!(Digest);

/// The digest serializer hashes exactly the bytes the codec layout
/// defines: little-endian fixed-width primitives, `u32` length prefixes,
/// 1-byte `Option`/`bool` tags, `u32` enum variant indices.
impl serde::Serializer for &mut Digest {
    type Ok = ();
    type Error = LenError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), LenError> {
        self.write(&[v as u8]);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), LenError> {
        self.write(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), LenError> {
        self.write(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), LenError> {
        self.write(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), LenError> {
        self.write(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), LenError> {
        self.write(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), LenError> {
        self.write(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), LenError> {
        self.write(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), LenError> {
        self.write(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), LenError> {
        self.write(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), LenError> {
        self.write(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), LenError> {
        self.write(&(v as u32).to_le_bytes());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), LenError> {
        self.serialize_bytes(v.as_bytes())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), LenError> {
        let len = u32::try_from(v.len()).map_err(|_| LenError("bytes too long".into()))?;
        self.write(&len.to_le_bytes());
        self.write(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), LenError> {
        self.write(&[0]);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), LenError> {
        self.write(&[1]);
        v.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), LenError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), LenError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), LenError> {
        self.write(&variant_index.to_le_bytes());
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        v: &T,
    ) -> Result<(), LenError> {
        v.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        v: &T,
    ) -> Result<(), LenError> {
        self.write(&variant_index.to_le_bytes());
        v.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, LenError> {
        let len = len.ok_or_else(|| LenError("sequences must know their length".into()))?;
        let len = u32::try_from(len).map_err(|_| LenError("sequence too long".into()))?;
        self.write(&len.to_le_bytes());
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, LenError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, LenError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, LenError> {
        self.write(&variant_index.to_le_bytes());
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, LenError> {
        let len = len.ok_or_else(|| LenError("maps must know their length".into()))?;
        let len = u32::try_from(len).map_err(|_| LenError("map too long".into()))?;
        self.write(&len.to_le_bytes());
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, LenError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, LenError> {
        self.write(&variant_index.to_le_bytes());
        Ok(self)
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    enum Sample {
        Unit,
        New(u64),
        Tuple(u8, String),
        Struct {
            a: Vec<u32>,
            b: Option<bool>,
            c: BTreeMap<u64, u64>,
        },
    }

    #[test]
    fn counts_match_layout_rules() {
        assert_eq!(serialized_len(&true), 1);
        assert_eq!(serialized_len(&7u32), 4);
        assert_eq!(serialized_len(&7u64), 8);
        assert_eq!(serialized_len(&-1i16), 2);
        assert_eq!(serialized_len(&3.5f64), 8);
        assert_eq!(serialized_len("héllo"), 4 + 6); // 2-byte é
        assert_eq!(serialized_len(&Option::<u32>::None), 1);
        assert_eq!(serialized_len(&Some(42u32)), 1 + 4);
        assert_eq!(serialized_len(&vec![1u64, 2, 3]), 4 + 24);
        assert_eq!(serialized_len(&(1u8, 2u16)), 3);
        assert_eq!(serialized_len(&Sample::Unit), 4);
        assert_eq!(serialized_len(&Sample::New(9)), 4 + 8);
        assert_eq!(
            serialized_len(&Sample::Tuple(1, "ab".into())),
            4 + 1 + 4 + 2
        );
        let mut m = BTreeMap::new();
        m.insert(1u64, 2u64);
        let s = Sample::Struct {
            a: vec![5, 6],
            b: Some(false),
            c: m,
        };
        assert_eq!(serialized_len(&s), 4 + (4 + 8) + (1 + 1) + (4 + 16));
    }

    #[test]
    fn digest_is_deterministic_and_value_sensitive() {
        let a = Sample::Struct {
            a: vec![5, 6],
            b: Some(false),
            c: BTreeMap::new(),
        };
        assert_eq!(fnv1a_digest(&a), fnv1a_digest(&a));
        let b = Sample::Struct {
            a: vec![5, 7],
            b: Some(false),
            c: BTreeMap::new(),
        };
        assert_ne!(
            fnv1a_digest(&a),
            fnv1a_digest(&b),
            "payload edit must move the digest"
        );
        assert_ne!(
            fnv1a_digest(&Sample::Unit),
            fnv1a_digest(&Sample::New(0)),
            "variant index is part of the digested bytes"
        );
    }

    #[test]
    fn streaming_absorb_equals_one_shot_digest() {
        // The catalog digest absorbs pieces in sequence; that must hash
        // the same bytes as serializing the equivalent tuple directly.
        let mut d = Digest::new();
        d.absorb("tag");
        d.absorb(&7u32);
        assert_eq!(d.finish(), fnv1a_digest(&("tag", 7u32)));
    }
}
