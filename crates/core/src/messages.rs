//! Application-level payloads carried by the overlay.

use mind_histogram::{CutTree, GridHistogram};
use mind_types::node::SimTime;
use mind_types::{BitCode, HyperRect, IndexSchema, NodeId, Record, WireSize};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How many copies of each record an index keeps (Section 3.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Replication {
    /// Primary copy only.
    None,
    /// Primary plus replicas at the `m` prefix neighbors that would take
    /// over on failure. `Level(1)` survives any 1 failure per sibling
    /// pair; the paper's Figure 16 shows it tolerating 15 % random node
    /// loss with no recall loss.
    Level(u8),
    /// Primary plus a replica at every overlay neighbor (the paper's
    /// "full replication": survives > 50 % random loss).
    Full,
}

/// A post-filter on any record attribute (indexed or carried), applied at
/// the responding node. This supports Index-3-style predicates on carried
/// attributes such as `dst_port` (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CarriedFilter {
    /// Attribute position in schema order.
    pub attr: usize,
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl CarriedFilter {
    /// `true` if the record passes the filter.
    pub fn accepts(&self, r: &Record) -> bool {
        let v = r.value(self.attr);
        self.lo <= v && v <= self.hi
    }
}

/// A complete index definition, shipped to fresh joiners.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexDef {
    /// The index schema.
    pub schema: IndexSchema,
    /// Replication level.
    pub replication: Replication,
    /// Every version: `(from_ts, cuts)`, in version order. The trees are
    /// `Arc`-shared with the sender's catalog (serialized transparently,
    /// so the wire format is unchanged).
    pub versions: Vec<(u64, Arc<CutTree>)>,
}

/// The MIND application protocol (carried opaquely by `OverlayMsg`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MindPayload {
    /// Flooded: instantiate an index on every node with its version-0 cuts.
    CreateIndex {
        /// The index schema.
        schema: IndexSchema,
        /// Data-space cuts for version 0. `Arc`-shared so that in-process
        /// deployments (the simulator's flood fan-out in particular) hold
        /// one tree, not one per recipient.
        cuts: Arc<CutTree>,
        /// Replication level for all inserts into this index.
        replication: Replication,
    },
    /// Flooded: install a new index version whose cuts govern records with
    /// timestamps at or after `from_ts` (Section 3.7 daily re-balancing).
    NewVersion {
        /// Index tag.
        index: String,
        /// Version number (monotonically increasing).
        version: u32,
        /// First timestamp governed by this version.
        from_ts: u64,
        /// The balanced cuts computed from the previous day's histogram
        /// (`Arc`-shared like `CreateIndex::cuts`).
        cuts: Arc<CutTree>,
    },
    /// Flooded: drop all state for an index on every node.
    DropIndex {
        /// Index tag.
        index: String,
    },
    /// Routed to the record's region owner: store one record.
    Insert {
        /// Index tag.
        index: String,
        /// Version whose cuts mapped the record.
        version: u32,
        /// The (already schema-conformed) record.
        record: Record,
        /// The inserting node (for the per-monitor metrics of Figure 12).
        origin: NodeId,
        /// When the insert left the origin (for insertion latency).
        sent_at: SimTime,
        /// Idempotency key, unique per origin: the storing node dedups
        /// retried copies on it and acks it back (see DESIGN.md §8).
        op_id: u64,
        /// The origin's settled-op horizon: every op counter of this
        /// origin at or below `horizon` is acked or abandoned, so
        /// receivers may garbage-collect their dedup memory of those ops
        /// (DESIGN.md §10). `0` claims nothing.
        horizon: u64,
    },
    /// Routed to the region owner shared by every carried record: store
    /// many records under **one** frame, one op id, one ack, and one
    /// horizon update — the batched ingest fast path. The origin's
    /// batcher (`reliability.rs`) only coalesces records that conformed
    /// to the same index, version, and routing code, so a batch routes
    /// exactly like each of its records would have alone.
    InsertBatch {
        /// Index tag.
        index: String,
        /// Version whose cuts mapped every record in the batch.
        version: u32,
        /// The (already schema-conformed) records, in origin insert order.
        records: Vec<Record>,
        /// The inserting node (for the per-monitor metrics of Figure 12).
        origin: NodeId,
        /// When the batch left the origin — the *oldest* record's
        /// enqueue time, so batching shows up honestly in insert latency.
        sent_at: SimTime,
        /// One idempotency key for the whole batch: the storing node
        /// applies all records or none, dedups retries, and acks once.
        op_id: u64,
        /// The origin's settled-op horizon (see
        /// [`MindPayload::Insert::horizon`]).
        horizon: u64,
    },
    /// Direct to a prefix neighbor: store a replica copy.
    Replica {
        /// Index tag.
        index: String,
        /// Version the record belongs to.
        version: u32,
        /// The record.
        record: Record,
        /// Idempotency key, unique per pushing primary; acked back to it.
        op_id: u64,
        /// The pushing primary's settled-op horizon (see
        /// [`MindPayload::Insert::horizon`]).
        horizon: u64,
    },
    /// Direct to a prefix neighbor: store replica copies of a whole
    /// applied batch — one push, one op id, one ack per replica target,
    /// however many records the primary just applied for it.
    ReplicaBatch {
        /// Index tag.
        index: String,
        /// Version the records belong to.
        version: u32,
        /// The records, in the order the primary applied them.
        records: Vec<Record>,
        /// Idempotency key, unique per pushing primary; acked back to it.
        op_id: u64,
        /// The pushing primary's settled-op horizon (see
        /// [`MindPayload::Insert::horizon`]).
        horizon: u64,
    },
    /// Direct to the sender of an `Insert`/`InsertBatch`/`Replica`/
    /// `ReplicaBatch`: the record(s) are durably applied (or were
    /// already — acks are re-sent for deduped retries, since the first
    /// ack may itself have been lost). A batch is acked by its single
    /// batch op id.
    Ack {
        /// The acknowledged operation.
        op_id: u64,
    },
    /// Routed to the owner of the query's covering prefix: split me.
    RootQuery {
        /// Query id (unique per origin).
        query_id: u64,
        /// Index tag.
        index: String,
        /// Version to consult.
        version: u32,
        /// The query hyper-rectangle over the indexed dimensions.
        rect: HyperRect,
        /// Post-filters on carried attributes.
        filters: Vec<CarriedFilter>,
        /// The originating node (receives plan and responses directly).
        origin: NodeId,
    },
    /// Routed to the owner of one covering region: answer for it.
    SubQuery {
        /// Query id.
        query_id: u64,
        /// Index tag.
        index: String,
        /// Version to consult.
        version: u32,
        /// The covering region this sub-query is responsible for.
        code: BitCode,
        /// The full query rectangle (responders clip to their region).
        rect: HyperRect,
        /// Post-filters on carried attributes.
        filters: Vec<CarriedFilter>,
        /// The originating node.
        origin: NodeId,
    },
    /// Direct to the originator: the covering codes the query was split
    /// into, so the originator can detect completion (Section 3.6).
    ///
    /// On an unbalanced overlay a sub-query region can span several nodes;
    /// the node that receives such a sub-query *refines* it — splits the
    /// region code one level and announces the replacement atomically via
    /// `replaces` (the replaced code counts as answered, its children as
    /// newly expected), so the originator's completion accounting stays
    /// exact.
    QueryPlan {
        /// Query id.
        query_id: u64,
        /// Version this plan covers.
        version: u32,
        /// The sub-query region codes.
        codes: Vec<BitCode>,
        /// For refinements: the coarser code these codes replace.
        replaces: Option<BitCode>,
    },
    /// Direct to the originator: one region's (possibly empty — negative)
    /// answer.
    QueryResponse {
        /// Query id.
        query_id: u64,
        /// Version answered.
        version: u32,
        /// Region code answered.
        code: BitCode,
        /// The responding node.
        responder: NodeId,
        /// Matching records (empty = negative response).
        records: Vec<Record>,
    },
    /// Flooded: install a standing query on every node; any node that
    /// stores a matching primary record notifies the trigger's origin
    /// directly (footnote 1 / on-line detection).
    CreateTrigger {
        /// The trigger definition.
        trigger: crate::trigger::Trigger,
    },
    /// Flooded: remove a standing query everywhere.
    DropTrigger {
        /// The trigger to remove.
        trigger_id: u64,
    },
    /// Direct to the trigger's origin: a record just matched.
    TriggerFired {
        /// The trigger that matched.
        trigger_id: u64,
        /// The node that stored the record.
        at: NodeId,
        /// The matching record.
        record: Record,
    },
    /// Direct from a fresh joiner to its acceptor: send me the current
    /// set of defined indices and standing queries (Section 3.4: "when
    /// nodes join the overlay, they obtain the current set of defined
    /// indices from the neighbor to which they attach").
    CatalogRequest,
    /// Direct to a round-robin neighbor (the periodic anti-entropy tick,
    /// DESIGN.md §16): the sender's catalog digest. The receiver replies
    /// with a full [`MindPayload::CatalogResponse`] only when its own
    /// digest differs, so a converged overlay's steady-state anti-entropy
    /// traffic is a 12-byte frame per tick instead of every schema and
    /// every version's cut tree. Fresh joiners still send
    /// [`MindPayload::CatalogRequest`] — they have nothing to compare.
    CatalogDigest {
        /// FNV-1a digest of the sender's catalog (indices, versions,
        /// triggers) over the codec byte layout
        /// ([`crate::wire_len::fnv1a_digest`]).
        digest: u64,
    },
    /// Direct reply to a [`MindPayload::CatalogRequest`] (or to a
    /// [`MindPayload::CatalogDigest`] that did not match).
    CatalogResponse {
        /// Every index: schema, replication, and all versions' cuts.
        indexes: Vec<IndexDef>,
        /// Every installed standing query.
        triggers: Vec<crate::trigger::Trigger>,
    },
    /// Direct from a fresh joiner to its acceptor: answer this sub-query
    /// from the historical data you retained for my region (Section 3.4:
    /// "data already stored in existing indices are not moved from the
    /// sibling to the joiner. Rather, the joiner maintains a pointer to
    /// the sibling and forwards queries to it").
    HandoffScan {
        /// Correlates the reply with the joiner's pending sub-query.
        handoff_id: u64,
        /// Index tag.
        index: String,
        /// Version to consult.
        version: u32,
        /// The region being answered.
        code: BitCode,
        /// The query rectangle.
        rect: HyperRect,
        /// Carried-attribute filters.
        filters: Vec<CarriedFilter>,
    },
    /// Direct reply to a [`MindPayload::HandoffScan`].
    HandoffRecords {
        /// Echo of the handoff id.
        handoff_id: u64,
        /// The sibling's matching historical records.
        records: Vec<Record>,
    },
    /// Routed to the designated collector (owner of the all-zeros code):
    /// one node's local data distribution for the day (Section 3.7).
    HistReport {
        /// Index tag.
        index: String,
        /// Day number.
        day: u64,
        /// The reporting node.
        reporter: NodeId,
        /// Its local histogram.
        hist: GridHistogram,
    },
}

/// Exact encoded size of the header an `Insert` and an `InsertBatch`
/// share under the `mind-net` codec: enum variant tag (4), length-
/// prefixed index tag (4 + bytes), `version` (4), `origin` (4),
/// `sent_at` (8), `op_id` (8), `horizon` (8). Computed once here so the
/// single and batched paths can never disagree on what a header costs —
/// the whole point of batching is amortizing exactly these bytes.
fn insert_header_size(index: &str) -> usize {
    4 + (4 + index.len()) + 4 + 4 + 8 + 8 + 8
}

/// Exact encoded size of the header a `Replica` and a `ReplicaBatch`
/// share: variant tag (4), length-prefixed index tag (4 + bytes),
/// `version` (4), `op_id` (8), `horizon` (8).
fn replica_header_size(index: &str) -> usize {
    4 + (4 + index.len()) + 4 + 8 + 8
}

/// Exact encoded size of a record sequence: `u32` count + each record's
/// own exact encoding ([`Record::wire_size`] is exact under the codec).
fn records_size(records: &[Record]) -> usize {
    4 + records.iter().map(Record::wire_size).sum::<usize>()
}

impl WireSize for MindPayload {
    /// Exact `mind_net::wire` encoded size of this payload.
    ///
    /// The insert plane (the per-record hot path, where batching amortizes
    /// framing) is O(1)-per-record arithmetic over the shared header
    /// helpers above; every other variant is counted by the
    /// [`crate::wire_len`] mirror of the codec. Both routes are pinned
    /// against the real encoder, for every variant, by `mind-net`'s
    /// `wire_size_is_exact_for_every_payload_kind` test — this used to be
    /// a wall of per-variant estimates (`Insert` charged a flat `64 +`),
    /// which skewed the simulator's bandwidth model against exactly the
    /// messages the ingest path cares about.
    fn wire_size(&self) -> usize {
        match self {
            MindPayload::Insert { index, record, .. } => {
                insert_header_size(index) + record.wire_size()
            }
            MindPayload::InsertBatch { index, records, .. } => {
                insert_header_size(index) + records_size(records)
            }
            MindPayload::Replica { index, record, .. } => {
                replica_header_size(index) + record.wire_size()
            }
            MindPayload::ReplicaBatch { index, records, .. } => {
                replica_header_size(index) + records_size(records)
            }
            other => crate::wire_len::serialized_len(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carried_filter_bounds_inclusive() {
        let f = CarriedFilter {
            attr: 1,
            lo: 10,
            hi: 20,
        };
        assert!(f.accepts(&Record::new(vec![0, 10])));
        assert!(f.accepts(&Record::new(vec![0, 20])));
        assert!(!f.accepts(&Record::new(vec![0, 9])));
        assert!(!f.accepts(&Record::new(vec![0, 21])));
    }

    #[test]
    fn response_size_scales_with_records() {
        let empty = MindPayload::QueryResponse {
            query_id: 1,
            version: 0,
            code: BitCode::ROOT,
            responder: NodeId(0),
            records: vec![],
        };
        let full = MindPayload::QueryResponse {
            query_id: 1,
            version: 0,
            code: BitCode::ROOT,
            responder: NodeId(0),
            records: (0..100).map(|i| Record::new(vec![i, i, i])).collect(),
        };
        assert!(full.wire_size() > empty.wire_size() + 2000);
    }
}
