//! Day-boundary histogram collection and version rollover (Section 3.7).
//!
//! At each day boundary every node ships its local data distribution to
//! the designated collector (the owner of the all-zeros code), which
//! merges the reports, computes balanced cuts for the next day, and
//! floods them as a new index version.

use crate::messages::MindPayload;
use crate::node::{token, MindNode, Out};
use mind_histogram::{CutTree, GridHistogram};
use mind_types::node::SimTime;
use mind_types::{BitCode, MindError};

pub(crate) const KIND_COLLECT: u64 = 3;

/// The region code all histogram reports route to: the node owning the
/// all-zeros corner of the code space acts as the designated collector of
/// Section 3.7.
pub(crate) fn collector_code() -> BitCode {
    BitCode::from_raw(0, 16)
}

impl MindNode {
    /// Ships the current day's histogram for `index` to the designated
    /// collector and resets the local accumulator (called at each day
    /// boundary — by the harness in experiments, mirroring how the
    /// paper's operators would schedule it).
    pub fn report_day_histogram(
        &mut self,
        now: SimTime,
        index: &str,
        day: u64,
        out: &mut Out,
    ) -> Result<(), MindError> {
        let state = self
            .indexes
            .get_mut(index)
            .ok_or_else(|| MindError::UnknownIndex(index.to_string()))?;
        let bounds = state.schema.bounds();
        let hist = std::mem::replace(
            &mut state.day_histogram,
            GridHistogram::new(bounds, self.cfg.hist_granularity),
        );
        let payload = MindPayload::HistReport {
            index: index.to_string(),
            day,
            reporter: self.id(),
            hist,
        };
        let events = self.overlay.route(now, collector_code(), payload, out);
        self.process_events(now, events, out);
        Ok(())
    }

    /// Collector role: merge one node's day histogram into the pending
    /// collection, arming the straggler grace timer on the first report.
    pub(crate) fn on_hist_report(
        &mut self,
        _now: SimTime,
        index: String,
        day: u64,
        hist: GridHistogram,
        out: &mut Out,
    ) {
        if !self.cfg.auto_versioning {
            return;
        }
        let key = (index.clone(), day);
        let seq = *self.collect_keys.entry(key).or_insert_with(|| {
            let s = self.collect_seq;
            self.collect_seq += 1;
            s
        });
        match self.collecting.get_mut(&seq) {
            Some((_, _, acc, n)) => {
                acc.merge(&hist);
                *n += 1;
            }
            None => {
                // First report for this (index, day): arm the grace timer.
                out.set_timer(self.cfg.collect_grace, token(KIND_COLLECT, seq));
                self.collecting.insert(seq, (index, day, hist, 1));
            }
        }
    }

    /// The grace period expired: compute balanced cuts from the merged
    /// histogram and flood them as the next version.
    fn finish_collection(&mut self, seq: u64, out: &mut Out) {
        let Some((index, day, hist, _reports)) = self.collecting.remove(&seq) else {
            return;
        };
        self.collect_keys.remove(&(index.clone(), day));
        let Some(state) = self.indexes.get(&index) else {
            return;
        };
        let bounds = state.schema.bounds();
        let cuts = CutTree::balanced_from_histogram(bounds, self.cfg.cut_depth, &hist);
        let version = state.versions.len() as u32;
        let from_ts = (day + 1) * self.cfg.day_len;
        let events = self.overlay.flood(
            MindPayload::NewVersion {
                index,
                version,
                from_ts,
                cuts: std::sync::Arc::new(cuts),
            },
            out,
        );
        self.process_events(0, events, out);
    }

    /// Handles rollover-class timers; `true` if `kind` was ours.
    pub(crate) fn handle_rollover_timer(&mut self, kind: u64, arg: u64, out: &mut Out) -> bool {
        if kind == KIND_COLLECT {
            self.finish_collection(arg, out);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_code_is_all_zeros() {
        let c = collector_code();
        assert!(c.iter_bits().all(|b| !b));
    }
}
