//! Per-node metrics and summary statistics for the evaluation figures.

use mind_types::node::SimTime;

/// Counters and samples one node accumulates while running.
#[derive(Debug, Default, Clone)]
pub struct NodeMetrics {
    /// `(completed_at, latency)` for every primary insert this node (as
    /// region owner) finished durably storing — the Figure 7/14 series.
    pub insert_latencies: Vec<(SimTime, SimTime)>,
    /// Overlay hops of every insert that arrived here.
    pub insert_hops: Vec<u32>,
    /// Routed messages that gave up (TTL/recovery exhaustion).
    pub undeliverable: u64,
    /// Target codes of the given-up messages (diagnostics).
    pub undeliverable_targets: Vec<mind_types::BitCode>,
    /// Inserts this node originated (per-monitor volume, Figure 12).
    pub inserts_originated: u64,
    /// Multi-record `InsertBatch` frames this node shipped (the ingest
    /// fast path; one-record stragglers leave as plain `Insert`s and are
    /// not counted here).
    pub insert_batches_sent: u64,
    /// Sub-queries this node answered.
    pub subqueries_answered: u64,
    /// Records this node's scans returned (zero-copy handles on the local
    /// path; the counter tracks scan volume regardless of destination).
    pub records_served: u64,
    /// Unacked insert/replica operations this node re-sent.
    pub retries_sent: u64,
    /// Acks received for this node's insert/replica operations.
    pub acks_received: u64,
    /// Duplicate operations (already-applied `op_id`s) ignored here.
    pub dup_ops_ignored: u64,
    /// Operations abandoned after exhausting their retry budget.
    pub retries_exhausted: u64,
    /// Query plan/sub-query re-dispatch rounds this node issued.
    pub query_retries: u64,
    /// Anti-entropy ticks this node sent as 12-byte catalog digests (the
    /// steady-state background cost; see DESIGN.md §16).
    pub catalog_digests_sent: u64,
    /// Received digests that disagreed with the local catalog — each one
    /// cost a full `CatalogResponse` reply. In a converged overlay this
    /// stays near zero while `catalog_digests_sent` keeps climbing.
    pub catalog_digest_mismatches: u64,
}

/// Percentile of a *sorted* slice using nearest-rank (the convention the
/// paper's box plots use). `p` in `[0, 100]`.
pub fn percentile(sorted: &[SimTime], p: f64) -> SimTime {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if sorted.is_empty() {
        return 0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// The latency summary every latency figure reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Sample count.
    pub count: usize,
    /// Median (50th percentile).
    pub median: SimTime,
    /// Arithmetic mean.
    pub mean: SimTime,
    /// 90th percentile.
    pub p90: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// Maximum.
    pub max: SimTime,
}

impl LatencySummary {
    /// Summarizes a set of latency samples (order irrelevant).
    pub fn from_samples(mut samples: Vec<SimTime>) -> Self {
        samples.sort_unstable();
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                median: 0,
                mean: 0,
                p90: 0,
                p99: 0,
                max: 0,
            };
        }
        let sum: u128 = samples.iter().map(|&s| s as u128).sum();
        LatencySummary {
            count: samples.len(),
            median: percentile(&samples, 50.0),
            mean: (sum / samples.len() as u128) as SimTime,
            p90: percentile(&samples, 90.0),
            p99: percentile(&samples, 99.0),
            max: samples.last().copied().unwrap_or(0),
        }
    }

    /// Renders microsecond fields as seconds for experiment output.
    pub fn format_seconds(&self) -> String {
        format!(
            "n={} median={:.3}s mean={:.3}s p90={:.3}s p99={:.3}s max={:.3}s",
            self.count,
            self.median as f64 / 1e6,
            self.mean as f64 / 1e6,
            self.p90 as f64 / 1e6,
            self.p99 as f64 / 1e6,
            self.max as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<SimTime> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 90.0), 90);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
    }

    #[test]
    fn percentile_empty_and_single() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn summary_statistics() {
        let s = LatencySummary::from_samples(vec![4, 1, 3, 2, 100]);
        assert_eq!(s.count, 5);
        assert_eq!(s.median, 3);
        assert_eq!(s.mean, 22);
        assert_eq!(s.max, 100);
        assert!(s.p90 >= s.median);
    }

    #[test]
    fn summary_empty() {
        let s = LatencySummary::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.median, 0);
    }

    #[test]
    fn format_is_humane() {
        let s = LatencySummary::from_samples(vec![1_500_000]);
        let txt = s.format_seconds();
        assert!(txt.contains("median=1.500s"), "{txt}");
    }
}
