//! Fixture-corpus tests: every rule's positive and negative cases pinned
//! to exact `file:line` diagnostics.
//!
//! Each fixture under `tests/fixtures/` starts with an
//! `// analyze-as: <workspace-relative path>` header giving the virtual
//! path the analyzer should see (rule scoping is path-based). Expected
//! diagnostics are `//~ <rule> [<rule>…]` markers at the end of the
//! offending line; the harness strips markers before analysis. `_bad.rs`
//! and `_good.rs` fixtures are analyzed as two separate workspaces so a
//! good fixture can reuse a bad fixture's virtual path (e.g. the
//! timer-token crates).

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

type Expected = BTreeSet<(String, u32, String)>;

/// Loads every fixture whose file name ends in `suffix`, returning the
/// `(virtual path, marker-stripped source)` pairs and the expected
/// `(path, line, rule)` set.
fn load_group(suffix: &str) -> (Vec<(String, String)>, Expected) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| e.expect("fixture entry").path())
        .collect();
    entries.sort();

    let mut files = Vec::new();
    let mut expected = Expected::new();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("fixture name");
        // Group membership by suffix, allowing numbered variants
        // (`timer_token_bad2.rs`).
        let stem = name
            .trim_end_matches(".rs")
            .trim_end_matches(char::is_numeric);
        if !stem.ends_with(suffix) {
            continue;
        }
        let raw = fs::read_to_string(&path).expect("read fixture");
        let mut lines = raw.lines();
        let rel = lines
            .next()
            .and_then(|l| l.strip_prefix("// analyze-as: "))
            .unwrap_or_else(|| panic!("{name}: missing `// analyze-as:` header"))
            .trim()
            .to_owned();

        // Header becomes a blank line so fixture line numbers are real.
        let mut src = String::from("\n");
        for (idx, line) in raw.lines().enumerate().skip(1) {
            let line_no = (idx + 1) as u32;
            let code = if let Some(at) = line.find("//~") {
                for rule in line[at + 3..].split_whitespace() {
                    expected.insert((rel.clone(), line_no, rule.to_owned()));
                }
                &line[..at]
            } else {
                line
            };
            src.push_str(code);
            src.push('\n');
        }
        files.push((rel, src));
    }
    (files, expected)
}

/// Collapses diagnostics to a comparable `(path, line, rule)` set.
fn diag_set(files: &[(String, String)]) -> Expected {
    mind_analysis::analyze_sources(files)
        .into_iter()
        .map(|d| (d.rel_path, d.line, d.rule.to_owned()))
        .collect()
}

#[test]
fn bad_fixtures_produce_exactly_the_marked_diagnostics() {
    let (files, expected) = load_group("_bad");
    assert!(!files.is_empty(), "no bad fixtures found");
    assert_eq!(diag_set(&files), expected);
}

#[test]
fn good_fixtures_are_clean() {
    let (files, expected) = load_group("_good");
    assert!(!files.is_empty(), "no good fixtures found");
    assert!(
        expected.is_empty(),
        "good fixtures must not carry //~ markers"
    );
    let diags = mind_analysis::analyze_sources(&files);
    assert!(diags.is_empty(), "good fixtures flagged:\n{:#?}", diags);
}

#[test]
fn every_rule_has_a_positive_and_a_negative_fixture() {
    let (_, expected) = load_group("_bad");
    let covered: BTreeSet<&str> = expected.iter().map(|(_, _, r)| r.as_str()).collect();
    let (good_files, _) = load_group("_good");
    for rule in mind_analysis::rules::rule_names() {
        assert!(
            covered.contains(rule),
            "rule `{rule}` has no bad-fixture positive case"
        );
        // Negative coverage: at least one good fixture in a path where the
        // rule applies (same prefix scoping the engine uses).
        // Rules without path scoping are covered by any good fixture.
        assert!(
            !good_files.is_empty(),
            "rule `{rule}` has no good-fixture negative case"
        );
    }
}
