// analyze-as: crates/core/src/rng_bad.rs
pub fn f() -> u64 {
    let mut r = thread_rng(); //~ rng
    rand::random() //~ rng
}
#[cfg(test)]
mod tests {
    fn t() -> SmallRng {
        SmallRng::from_entropy() //~ rng
    }
}
