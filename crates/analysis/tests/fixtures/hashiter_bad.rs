// analyze-as: crates/core/src/hashiter_bad.rs
use std::collections::{HashMap, HashSet};
pub struct S {
    bins: HashMap<u64, u64>,
    seen: HashSet<u64>,
}
impl S {
    pub fn dump(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (k, v) in &self.bins { //~ hashiter
            out.push((*k, *v));
        }
        out
    }
    pub fn total(&self) -> u64 {
        self.bins.values().sum() //~ hashiter
    }
    pub fn gc(&mut self, horizon: u64) {
        self.seen.retain(|&c| c > horizon); //~ hashiter
    }
    pub fn local(n: u64) -> Vec<u64> {
        let mut tmp = HashMap::new();
        tmp.insert(n, n);
        tmp.into_keys().collect() //~ hashiter
    }
}
