// analyze-as: crates/store/src/mem.rs
pub fn scan(records: &[Record]) -> Vec<Record> {
    records.iter().map(|r| r.clone()).collect() //~ recclone
}
