// analyze-as: crates/overlay/src/timer_token_bad2.rs
pub const TOKEN_TAG: u64 = 0xB6 << 56; //~ timer-token
pub const KIND_C: u64 = 2;
