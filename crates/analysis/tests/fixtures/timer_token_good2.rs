// analyze-as: crates/overlay/src/timer_token_good2.rs
pub const TOKEN_TAG: u64 = 0xA5 << 56;
pub const KIND_HEARTBEAT: u64 = 0;
pub const KIND_RING: u64 = 2;
