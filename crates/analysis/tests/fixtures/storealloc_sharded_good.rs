// analyze-as: crates/store/src/sharded.rs
use std::sync::Arc;

/// The endorsed sharded-gather spellings: per-shard results land in the
/// vector the subtree scan already allocated, ids are remapped in place,
/// and record handles move by `Arc::clone` refcount bump.
pub fn gather_ids(mut per_shard: Vec<Vec<u64>>, global: &[Vec<u64>]) -> Vec<u64> {
    let total: usize = per_shard.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for (shard, ids) in per_shard.iter_mut().enumerate() {
        for id in ids.iter_mut() {
            *id = global[shard][*id as usize];
        }
        out.append(ids);
    }
    out
}

pub fn gather_records(found: &[Arc<Vec<u64>>]) -> Vec<Arc<Vec<u64>>> {
    let mut out = Vec::with_capacity(found.len());
    for record in found {
        out.push(Arc::clone(record));
    }
    out
}
