// analyze-as: crates/store/src/sharded.rs
pub fn gather_ids(per_shard: &[Vec<u64>], global: &[Vec<u64>]) -> Vec<u64> {
    let mut out = Vec::new(); //~ storealloc
    for (shard, ids) in per_shard.iter().enumerate() {
        let local = ids.to_vec(); //~ storealloc
        for id in local {
            out.push(global[shard][id as usize].clone()); //~ storealloc
        }
    }
    out
}

#[cfg(test)]
mod tests {
    // Test code allocates freely — the rule is production-only.
    #[test]
    fn scratch_vectors_are_fine_here() {
        let shards = [[7u64].to_vec()].to_vec();
        let ids = super::gather_ids(&shards, &shards.clone());
        assert_eq!(ids.len(), 1);
    }
}
