// analyze-as: crates/store/src/bitmap.rs
use std::sync::Arc;

pub fn decode(words: &[u64], records: &[Arc<Vec<u64>>]) -> Vec<Arc<Vec<u64>>> {
    // Pre-sized buffers and Arc::clone handle bumps are the endorsed
    // spellings; a `.clone()` in a comment is not a hit either.
    let mut out = Vec::with_capacity(64);
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            out.push(Arc::clone(&records[(w << 6) | b]));
            bits &= bits - 1;
        }
    }
    out
}

pub fn count(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}
