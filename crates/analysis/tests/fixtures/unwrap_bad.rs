// analyze-as: crates/core/src/unwrap_bad.rs
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap() //~ unwrap
}
pub fn g(x: Result<u32, ()>) -> u32 {
    x.expect("boom") //~ unwrap
}
pub fn multiline(x: Option<u32>) -> u32 {
    x.map(|v| v + 1)
        .unwrap() //~ unwrap
}
