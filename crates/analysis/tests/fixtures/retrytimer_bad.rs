// analyze-as: crates/core/src/retrytimer_bad.rs
pub fn arm(out: &mut Out, id: u64) {
    out.set_timer(10, token(KIND_OP_RETRY, id)); //~ retrytimer
}
#[cfg(test)]
mod tests {
    fn t(out: &mut Out) {
        out.set_timer(0, token(KIND_ANTI_ENTROPY, 0)); //~ retrytimer
    }
}
