// analyze-as: crates/core/src/wildcard_good.rs
pub fn dispatch(m: MindPayload) -> u32 {
    match m {
        MindPayload::CatalogRequest => 1,
        MindPayload::Insert { .. } => 2,
    }
}
pub fn integer_kinds(k: u64) -> u32 {
    match k {
        0 => 1,
        _ => 0,
    }
}
pub fn enum_in_body_is_not_a_dispatch(k: u64, out: &mut Out) -> u32 {
    match k {
        1 => {
            out.send(MindPayload::CatalogRequest);
            1
        }
        _ => 0,
    }
}
#[cfg(test)]
mod tests {
    fn t(m: MindPayload) -> u32 {
        match m {
            MindPayload::CatalogRequest => 1,
            _ => 0,
        }
    }
}
