// analyze-as: crates/net/src/wallclock_good.rs
pub fn f() -> Instant {
    Instant::now()
}
