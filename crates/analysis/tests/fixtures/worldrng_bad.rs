// analyze-as: crates/netsim/src/worldrng_bad.rs
pub fn second_rng() -> StdRng {
    StdRng::seed_from_u64(42) //~ worldrng
}
