// analyze-as: crates/netsim/src/worldrng_good.rs
pub fn world_rng(seed: u64) -> StdRng {
    // lint:allow(worldrng) fixture: this IS the world RNG, seeded from config
    StdRng::seed_from_u64(seed)
}
