// analyze-as: crates/core/src/timer_token_good.rs
pub const TOKEN_TAG: u64 = 0xB6 << 56;
pub const KIND_A: u64 = 0;
pub const KIND_B: u64 = 1;
