// analyze-as: crates/core/src/stdmutex_bad.rs
use std::sync::Mutex; //~ stdmutex
use std::sync::{Arc, RwLock}; //~ stdmutex
pub struct S {
    m: std::sync::Mutex<u32>, //~ stdmutex
}
