// analyze-as: crates/core/src/stdmutex_good.rs
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;
pub struct S {
    m: Mutex<u32>,
    r: RwLock<u32>,
    a: Arc<u32>,
}
