// analyze-as: crates/core/src/waiver_bad.rs
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(unwrap) //~ waiver-justified
}
pub fn g(x: Option<u32>) -> u32 {
    // lint:allow(nosuchrule) the rule name is a typo //~ waiver-justified
    x.unwrap_or_default()
}
