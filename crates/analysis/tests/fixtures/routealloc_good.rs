// analyze-as: crates/histogram/src/flat.rs
pub fn descend(codes: &[u8], scratch: &mut Vec<u8>) {
    scratch.clear();
    scratch.extend_from_slice(codes);
    let mut fixed = Vec::with_capacity(codes.len());
    fixed.extend_from_slice(codes);
}
