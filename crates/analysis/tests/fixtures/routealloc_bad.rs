// analyze-as: crates/histogram/src/flat.rs
pub fn descend(codes: &[u8]) -> Vec<u8> {
    let mut stack = Vec::new(); //~ routealloc
    let copy = codes.to_vec(); //~ routealloc
    let again = copy.clone(); //~ routealloc
    stack.extend_from_slice(&again);
    stack
}
