// analyze-as: crates/store/src/bitmap.rs
pub fn decode(words: &[u64]) -> Vec<u64> {
    let mut ids = Vec::new(); //~ storealloc
    let copy = words.to_vec(); //~ storealloc
    for (w, &word) in copy.iter().enumerate() {
        let again = word.clone(); //~ storealloc
        ids.push((w as u64) << 6 | again.trailing_zeros() as u64);
    }
    ids
}

#[cfg(test)]
mod tests {
    // Test code allocates freely — the rule is production-only.
    #[test]
    fn scratch_vectors_are_fine_here() {
        let mut ids = Vec::new();
        ids.push(super::decode(&[1u64].to_vec()).clone());
        assert_eq!(ids.len(), 1);
    }
}
