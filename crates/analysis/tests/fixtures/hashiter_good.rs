// analyze-as: crates/core/src/hashiter_good.rs
use std::collections::{BTreeMap, HashMap};
pub struct S {
    bins: BTreeMap<u64, u64>,
    lookaside: HashMap<u64, u64>,
}
impl S {
    pub fn dump(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (k, v) in &self.bins {
            out.push((*k, *v));
        }
        out
    }
    pub fn hit(&self, k: u64) -> Option<u64> {
        self.lookaside.get(&k).copied()
    }
    pub fn put(&mut self, k: u64, v: u64) {
        self.lookaside.insert(k, v);
    }
}
#[cfg(test)]
mod tests {
    fn order_free_assert(s: &super::S) -> u64 {
        s.lookaside.values().sum()
    }
}
