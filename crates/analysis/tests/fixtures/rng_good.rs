// analyze-as: crates/core/src/rng_good.rs
pub fn f(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
