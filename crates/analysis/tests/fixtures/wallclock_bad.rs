// analyze-as: crates/core/src/wallclock_bad.rs
pub fn f() -> Instant {
    Instant::now() //~ wallclock
}
#[cfg(test)]
mod tests {
    fn t() {
        let _ = std::time::SystemTime::now(); //~ wallclock
    }
}
