// analyze-as: crates/core/src/timer_token_bad.rs
pub const TOKEN_TAG: u64 = 0xB6 << 56;
pub const KIND_A: u64 = 1;
pub const KIND_B: u64 = 1; //~ timer-token
pub const KIND_BIG: u64 = 300; //~ timer-token
