// analyze-as: crates/core/src/unwrap_good.rs
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
pub fn s() -> &'static str {
    ".unwrap() inside a string literal is not a call"
}
#[cfg(test)]
mod tests {
    fn t(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
