// analyze-as: crates/core/src/wildcard_bad.rs
pub fn dispatch(m: MindPayload) {
    match m {
        MindPayload::CatalogRequest => {}
        _ => {} //~ handler-wildcard
    }
}
pub fn sizes(m: &OverlayMsg) -> usize {
    match m {
        OverlayMsg::JoinRequest => 8,
        _ => 32, //~ handler-wildcard
    }
}
