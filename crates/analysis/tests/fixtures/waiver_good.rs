// analyze-as: crates/core/src/waiver_good.rs
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(unwrap) fixture: caller guarantees Some
}
pub fn g(x: Option<u32>) -> u32 {
    // lint:allow(unwrap) fixture: waiver on the line above also counts
    x.unwrap()
}
