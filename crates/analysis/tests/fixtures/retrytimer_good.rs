// analyze-as: crates/core/src/reliability.rs
pub fn arm(out: &mut Out, id: u64) {
    out.set_timer(10, token(KIND_OP_RETRY, id));
}
