// analyze-as: crates/store/src/dac.rs
pub fn scan(records: &[Arc<Record>]) -> Vec<Arc<Record>> {
    records.iter().map(Arc::clone).collect()
}
