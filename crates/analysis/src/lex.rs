//! A Rust lexer producing a token stream with exact line numbers.
//!
//! This is the layer that makes the analyzer immune to the failure mode of
//! the legacy substring scanner: string literals, character literals, and
//! comments are consumed as single opaque tokens (or dropped entirely), so
//! a `"{"` in a test fixture or a `.unwrap()` mentioned in a doc comment
//! can never be mistaken for code.
//!
//! The environment vendors no registry crates, so this plays the role a
//! `syn`/`proc-macro2` front-end would: full literal/comment handling and
//! delimiter structure, without the parts of a real parser the rule engine
//! does not need (expression precedence, type resolution).

use std::fmt;

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`r#ident` is normalized to `ident`).
    Ident,
    /// Lifetime (`'a`), without the quote.
    Lifetime,
    /// Numeric literal, lexeme preserved (`0xA5`, `1_000u64`, `1.5`).
    Num,
    /// String/char/byte-string literal; contents opaque.
    Str,
    /// Operator or separator. Multi-character operators `::`, `=>`, `->`,
    /// `..`, `..=`, `...` are single tokens; everything else is one char.
    Punct,
    /// Opening delimiter `(`, `[` or `{`.
    Open(Delim),
    /// Closing delimiter `)`, `]` or `}`.
    Close(Delim),
}

/// Delimiter flavor for [`TokKind::Open`]/[`TokKind::Close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` … `)`
    Paren,
    /// `[` … `]`
    Bracket,
    /// `{` … `}`
    Brace,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// The lexeme (for [`TokKind::Str`] this is a placeholder, not the
    /// literal's contents — rules must never see inside strings).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// A `lint:allow(<rule>)` waiver found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the waiver text appears on.
    pub line: u32,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Whether non-empty justification text follows the closing paren.
    pub justified: bool,
}

/// A lexing failure (unterminated literal or comment).
#[derive(Debug, Clone)]
pub struct LexError {
    /// 1-based line of the offending construct.
    pub line: u32,
    /// Human-readable cause.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Waivers found in comments, in source order.
    pub waivers: Vec<Waiver>,
}

/// Lexes `src` into tokens and waivers.
pub fn lex(src: &str) -> Result<Lexed, LexError> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Result<Lexed, LexError> {
        while let Some(c) = self.peek(0) {
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment()?,
                b'"' => self.string()?,
                b'\'' => self.char_or_lifetime()?,
                b'r' | b'b' | b'c' if self.raw_or_byte_prefix() => {}
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                b'(' => self.delim(TokKind::Open(Delim::Paren), "("),
                b')' => self.delim(TokKind::Close(Delim::Paren), ")"),
                b'[' => self.delim(TokKind::Open(Delim::Bracket), "["),
                b']' => self.delim(TokKind::Close(Delim::Bracket), "]"),
                b'{' => self.delim(TokKind::Open(Delim::Brace), "{"),
                b'}' => self.delim(TokKind::Close(Delim::Brace), "}"),
                _ => self.punct(),
            }
        }
        Ok(self.out)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: &str) {
        self.out.tokens.push(Token {
            kind,
            text: text.to_owned(),
            line: self.line,
        });
    }

    fn delim(&mut self, kind: TokKind, text: &str) {
        self.push(kind, text);
        self.pos += 1;
    }

    /// `// …` — consumed to end of line; scanned for waivers.
    fn line_comment(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == b'\n' {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.scan_waivers(&text, self.line);
    }

    /// `/* … */`, nesting honored; scanned for waivers line by line.
    fn block_comment(&mut self) -> Result<(), LexError> {
        let open_line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        let mut cur = String::new();
        while depth > 0 {
            match self.peek(0) {
                None => {
                    return Err(LexError {
                        line: open_line,
                        msg: "unterminated block comment".into(),
                    })
                }
                Some(b'\n') => {
                    self.scan_waivers(&cur, self.line);
                    cur.clear();
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'/') if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                Some(b'*') if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                Some(c) => {
                    cur.push(c as char);
                    self.pos += 1;
                }
            }
        }
        self.scan_waivers(&cur, self.line);
        Ok(())
    }

    /// Records any `lint:allow(<rule>)` occurrences in comment text.
    fn scan_waivers(&mut self, text: &str, line: u32) {
        let mut rest = text;
        while let Some(at) = rest.find("lint:allow(") {
            let after = &rest[at + "lint:allow(".len()..];
            let Some(close) = after.find(')') else {
                break;
            };
            let rule = after[..close].trim().to_owned();
            // Only a real rule-name token is a waiver; prose like
            // "lint:allow(<rule>)" in documentation is not.
            let is_name = !rule.is_empty()
                && rule
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
            if !is_name {
                rest = &after[close + 1..];
                continue;
            }
            let tail = &after[close + 1..];
            // Justification: any non-punctuation text after the closing
            // paren (a bare "." or "," does not explain anything).
            let justified = tail.trim().chars().any(|c| c.is_alphanumeric());
            self.out.waivers.push(Waiver {
                line,
                rule,
                justified,
            });
            rest = tail;
        }
    }

    /// `"…"` with escape handling.
    fn string(&mut self) -> Result<(), LexError> {
        let open_line = self.line;
        self.pos += 1; // opening quote
        loop {
            match self.peek(0) {
                None => {
                    return Err(LexError {
                        line: open_line,
                        msg: "unterminated string literal".into(),
                    })
                }
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    // Skip the escaped character (may be a quote).
                    self.pos += 2;
                }
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
        self.out.tokens.push(Token {
            kind: TokKind::Str,
            text: "\"…\"".into(),
            line: open_line,
        });
        Ok(())
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"` — returns `true` if a
    /// raw/byte/c-string was consumed, `false` if this `r`/`b`/`c` starts a
    /// plain identifier (the caller then lexes it as one).
    fn raw_or_byte_prefix(&mut self) -> bool {
        let mut i = self.pos;
        // Up to two prefix letters (`br`, `cr`), then optional `#`s, then `"`.
        let mut letters = 0;
        while letters < 2 && matches!(self.src.get(i), Some(b'r' | b'b' | b'c')) {
            i += 1;
            letters += 1;
        }
        let hash_start = i;
        while self.src.get(i) == Some(&b'#') {
            i += 1;
        }
        let hashes = i - hash_start;
        if self.src.get(i) != Some(&b'"') {
            // Not a string prefix — but `r#ident` is a raw identifier.
            if hashes == 1
                && self
                    .src
                    .get(hash_start + 1)
                    .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
                && self.src.get(self.pos) == Some(&b'r')
                && hash_start == self.pos + 1
            {
                self.pos += 2; // skip `r#`, lex the rest as a plain ident
                self.ident();
                return true;
            }
            return false;
        }
        // Byte/c strings without `#`s still use escape rules; raw ones do
        // not. Distinguish by whether any `#`s or a leading `r` is present.
        let raw =
            hashes > 0 || self.src[self.pos] == b'r' || self.src.get(self.pos + 1) == Some(&b'r');
        let open_line = self.line;
        self.pos = i + 1; // past the opening quote
        loop {
            match self.peek(0) {
                None => {
                    // Unterminated; surface at the close-delimiter check.
                    break;
                }
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'\\') if !raw => {
                    self.pos += 2;
                }
                Some(b'"') => {
                    // A raw string closes only on `"` followed by its `#`s.
                    let mut ok = true;
                    for k in 0..hashes {
                        if self.src.get(self.pos + 1 + k) != Some(&b'#') {
                            ok = false;
                            break;
                        }
                    }
                    self.pos += 1;
                    if ok {
                        self.pos += hashes;
                        break;
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
        self.out.tokens.push(Token {
            kind: TokKind::Str,
            text: "\"…\"".into(),
            line: open_line,
        });
        true
    }

    /// `'a` lifetime vs `'x'` char literal.
    fn char_or_lifetime(&mut self) -> Result<(), LexError> {
        // Lifetime: quote + ident-start, NOT followed by a closing quote
        // (`'a'` is a char; `'a` is a lifetime).
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        let ident_start = c1.is_some_and(|c| c == b'_' || c.is_ascii_alphabetic());
        if ident_start && c2 != Some(b'\'') {
            let start = self.pos + 1;
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokKind::Lifetime, &text);
            return Ok(());
        }
        // Char literal: quote, (escape | char), quote.
        let open_line = self.line;
        self.pos += 1;
        match self.peek(0) {
            Some(b'\\') => {
                self.pos += 2;
                // Multi-char escapes (`\u{1F600}`, `\x7f`) run to the quote.
                while self.peek(0).is_some() && self.peek(0) != Some(b'\'') {
                    self.pos += 1;
                }
            }
            Some(_) => self.pos += 1,
            None => {
                return Err(LexError {
                    line: open_line,
                    msg: "unterminated character literal".into(),
                })
            }
        }
        if self.peek(0) != Some(b'\'') {
            return Err(LexError {
                line: open_line,
                msg: "unterminated character literal".into(),
            });
        }
        self.pos += 1;
        self.out.tokens.push(Token {
            kind: TokKind::Str,
            text: "'…'".into(),
            line: open_line,
        });
        Ok(())
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Ident, &text);
    }

    fn number(&mut self) {
        let start = self.pos;
        // Integer/float body: digits, `_`, base prefixes, hex digits, type
        // suffixes — all alphanumeric, so one class suffices. A `.` joins
        // only when followed by a digit (so `0..n` stays a range).
        while let Some(c) = self.peek(0) {
            if c == b'_' || c.is_ascii_alphanumeric() {
                self.pos += 1;
            } else if c == b'.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !self.src[start..self.pos].contains(&b'.')
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Num, &text);
    }

    fn punct(&mut self) {
        let joined: &str = match (self.peek(0), self.peek(1), self.peek(2)) {
            (Some(b':'), Some(b':'), _) => "::",
            (Some(b'='), Some(b'>'), _) => "=>",
            (Some(b'-'), Some(b'>'), _) => "->",
            (Some(b'.'), Some(b'.'), Some(b'=')) => "..=",
            (Some(b'.'), Some(b'.'), Some(b'.')) => "...",
            (Some(b'.'), Some(b'.'), _) => "..",
            _ => {
                let c = self.src[self.pos] as char;
                self.pos += 1;
                let mut s = String::new();
                s.push(c);
                self.push(TokKind::Punct, &s);
                return;
            }
        };
        self.pos += joined.len();
        self.push(TokKind::Punct, joined);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .unwrap()
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn braces_in_strings_are_not_delimiters() {
        let toks = kinds(r#"let s = "{"; let t = '{';"#);
        assert!(!toks.iter().any(|(k, _)| matches!(k, TokKind::Open(_))));
    }

    #[test]
    fn comments_produce_no_tokens() {
        let toks = kinds("// x.unwrap()\n/* y.unwrap() */ a");
        assert_eq!(toks, vec![(TokKind::Ident, "a".into())]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ b");
        assert_eq!(toks, vec![(TokKind::Ident, "b".into())]);
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let toks = kinds(r##"let s = r#"quote " inside"#; x"##);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("x"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Str).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn escaped_quote_in_string() {
        let toks = kinds(r#"let s = "a\"b{"; y"#);
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("y"));
        assert!(!toks.iter().any(|(k, _)| matches!(k, TokKind::Open(_))));
    }

    #[test]
    fn multichar_puncts_join() {
        let toks = kinds("a::b => c -> d 0..n 1..=m");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["::", "=>", "->", "..", "..="]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\nb /* c\nd */ e";
        let lexed = lex(src).unwrap();
        let by_name: Vec<(String, u32)> = lexed
            .tokens
            .iter()
            .map(|t| (t.text.clone(), t.line))
            .collect();
        assert!(by_name.contains(&("a".into(), 1)));
        assert!(by_name.contains(&("b".into(), 4)));
        assert!(by_name.contains(&("e".into(), 5)));
    }

    #[test]
    fn waivers_parsed_with_justification_flag() {
        let lexed =
            lex("// lint:allow(unwrap) invariant holds\nlet x = 1; // lint:allow(rng)\n").unwrap();
        assert_eq!(lexed.waivers.len(), 2);
        assert_eq!(lexed.waivers[0].rule, "unwrap");
        assert!(lexed.waivers[0].justified);
        assert_eq!(lexed.waivers[1].rule, "rng");
        assert!(!lexed.waivers[1].justified);
        assert_eq!(lexed.waivers[1].line, 2);
    }

    #[test]
    fn hex_and_shift_tokens() {
        let toks = kinds("const T: u64 = 0xA5 << 56;");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["0xA5", "56"]);
    }

    #[test]
    fn raw_identifier_normalized() {
        let toks = kinds("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "match"));
    }
}
