//! Workspace driver for the determinism analyzer.
//!
//! Usage: `cargo run -p mind-analysis --bin analyze -- [root]`
//!
//! Walks every `.rs` file under `root` (default `.`), skipping build
//! output, vendored stand-ins, the fuzz harness, and the analyzer's own
//! deliberately-bad fixture corpus, then runs the rule engine and prints
//! one diagnostic per finding. Exit status 1 when anything is found.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fuzz"];

fn main() -> ExitCode {
    let root_arg = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());
    let root = PathBuf::from(&root_arg);
    if !root.is_dir() {
        eprintln!("analyze: {} is not a directory", root.display());
        return ExitCode::FAILURE;
    }

    let mut files: Vec<(String, String)> = Vec::new();
    if let Err(e) = collect(&root, &root, &mut files) {
        eprintln!("analyze: {}", e);
        return ExitCode::FAILURE;
    }
    files.sort();

    let diags = mind_analysis::analyze_sources(&files);
    for d in &diags {
        println!("{}", d);
    }
    if diags.is_empty() {
        println!("analyze: OK — {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "analyze: {} finding(s) in {} files scanned",
            diags.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

/// Recursively gathers workspace `.rs` files as `(rel_path, source)`,
/// in sorted order for deterministic output.
fn collect(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {}", dir.display(), e))?
        .filter_map(|r| r.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name) {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            // The fixture corpus is deliberately full of violations.
            if rel.contains("/tests/fixtures/") {
                continue;
            }
            let src =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {}", path.display(), e))?;
            out.push((rel, src));
        }
    }
    Ok(())
}
