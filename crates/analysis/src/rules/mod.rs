//! The rule engine: per-file rules over annotated token streams plus
//! workspace-global rules that aggregate across files.

use crate::diag::Diagnostic;
use crate::lex::TokKind;
use crate::stream::{SourceFile, Tok};

mod hashiter;
mod needles;
mod timer_token;
mod wildcard;

pub use timer_token::TimerTokenRule;

/// Static facts about a rule: identity, rationale, and scope.
pub struct Meta {
    /// Short name used in diagnostics and `lint:allow(<name>)` waivers.
    pub name: &'static str,
    /// Rationale shown with each hit.
    pub why: &'static str,
    /// `true` if the rule also applies inside test code.
    pub applies_in_tests: bool,
    /// When non-empty, the rule *only* applies under these path prefixes.
    pub only_prefixes: &'static [&'static str],
    /// Path prefixes the rule does not apply to.
    pub exempt_prefixes: &'static [&'static str],
}

impl Meta {
    /// `true` if the rule applies to a file at `rel_path` at all.
    pub fn in_scope(&self, rel_path: &str) -> bool {
        if self.exempt_prefixes.iter().any(|p| rel_path.starts_with(p)) {
            return false;
        }
        self.only_prefixes.is_empty() || self.only_prefixes.iter().any(|p| rel_path.starts_with(p))
    }
}

/// A rule that inspects one file at a time.
pub trait FileRule {
    /// The rule's identity and scope.
    fn meta(&self) -> &'static Meta;
    /// Scans `sf`, emitting `(line, detail)` hits. `detail` may add
    /// hit-specific context to the rule's `why` (empty = none).
    fn check(&self, sf: &SourceFile, out: &mut Vec<(u32, String)>);
}

/// A rule that needs the whole workspace before it can judge (it still
/// reports per-file, per-line diagnostics).
pub trait GlobalRule {
    /// The rule's identity and scope.
    fn meta(&self) -> &'static Meta;
    /// Feeds one file's tokens into the aggregate.
    fn scan_file(&mut self, sf: &SourceFile);
    /// Emits diagnostics once every file has been scanned.
    fn finish(&mut self, out: &mut Vec<Diagnostic>);
}

/// Every per-file rule, in diagnostic order.
pub fn file_rules() -> Vec<Box<dyn FileRule>> {
    let mut rules: Vec<Box<dyn FileRule>> = needles::rules();
    rules.push(Box::new(hashiter::HashIterRule));
    rules.push(Box::new(wildcard::HandlerWildcardRule));
    rules
}

/// Every rule name (for waiver validation).
pub fn rule_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = file_rules().iter().map(|r| r.meta().name).collect();
    names.push(timer_token::META.name);
    names.push("waiver-justified");
    names
}

// ---------------------------------------------------------- token helpers

/// `true` if `t` is the identifier `s`.
pub(crate) fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// `true` if `t` is the punctuation `s`.
pub(crate) fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// If `toks[i]` starts a method call `.name(`, returns the method name
/// index. `..` never matches (it is a distinct token).
pub(crate) fn method_call_at(toks: &[Tok], i: usize) -> Option<usize> {
    if is_punct(&toks[i], ".")
        && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
        && toks
            .get(i + 2)
            .is_some_and(|t| t.kind == TokKind::Open(crate::lex::Delim::Paren))
    {
        Some(i + 1)
    } else {
        None
    }
}

/// `true` if the identifiers `segs` appear at `i` joined by `::`
/// (`segs = ["Instant", "now"]` matches `Instant::now`).
pub(crate) fn path_at(toks: &[Tok], i: usize, segs: &[&str]) -> bool {
    let mut k = i;
    for (n, seg) in segs.iter().enumerate() {
        if !toks.get(k).is_some_and(|t| is_ident(t, seg)) {
            return false;
        }
        k += 1;
        if n + 1 < segs.len() {
            if !toks.get(k).is_some_and(|t| is_punct(t, "::")) {
                return false;
            }
            k += 1;
        }
    }
    true
}
