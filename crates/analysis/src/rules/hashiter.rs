//! `hashiter`: iteration over `std::collections::HashMap`/`HashSet` in
//! sim-driven crates.
//!
//! `RandomState` hashing makes iteration order differ per process and per
//! instance, so any hash-collection iteration whose order can reach wire
//! messages, stored state, or emitted series silently breaks same-seed
//! byte-identical replay. The rule is deliberately coarse: in the scoped
//! crates, *any* iteration over a binding whose declared type is
//! `HashMap`/`HashSet` is flagged — keyed lookups stay free, ordered
//! traversal must use `BTreeMap`/`BTreeSet` or sorted keys.
//!
//! Detection is two-pass over a file's tokens:
//! 1. collect names bound to hash types, from `name: HashMap<…>` type
//!    ascriptions (fields, lets, params, struct literals) and
//!    `let name = HashMap::new()` initialisers;
//! 2. flag `recv.iter()`-family calls whose receiver is a collected name,
//!    and `for … in … name {` loops whose iterated expression ends in one.

use super::{is_ident, is_punct, method_call_at, FileRule, Meta};
use crate::lex::Delim;
use crate::lex::TokKind;
use crate::stream::{SourceFile, Tok};
use std::collections::BTreeSet;

pub static META: Meta = Meta {
    name: "hashiter",
    why: "HashMap/HashSet iteration order is randomized per instance and \
          breaks same-seed replay; use BTreeMap/BTreeSet or sort the keys",
    applies_in_tests: false,
    only_prefixes: &[
        "crates/netsim/src/",
        "crates/core/src/",
        "crates/overlay/src/",
        "crates/store/src/",
        "crates/histogram/src/",
    ],
    exempt_prefixes: &[],
};

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Order-observing methods. `get`/`contains`/`insert`/`remove`/`len` are
/// deliberately absent — keyed access is order-free.
const ITER_METHODS: [&str; 11] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
    "extract_if",
];

pub struct HashIterRule;

impl FileRule for HashIterRule {
    fn meta(&self) -> &'static Meta {
        &META
    }

    fn check(&self, sf: &SourceFile, out: &mut Vec<(u32, String)>) {
        let toks = &sf.toks;
        let names = collect_hash_bindings(toks);
        if names.is_empty() {
            return;
        }
        for i in 0..toks.len() {
            if toks[i].in_test {
                continue;
            }
            // `recv.iter()` family: receiver is the identifier right
            // before the dot.
            if let Some(m) = method_call_at(toks, i) {
                if ITER_METHODS.contains(&toks[m].text.as_str())
                    && i > 0
                    && toks[i - 1].kind == TokKind::Ident
                    && names.contains(toks[i - 1].text.as_str())
                {
                    out.push((toks[m].line, format!("(`{}`)", toks[i - 1].text)));
                }
            }
            // `for pat in expr {`: flag when the token right before the
            // loop-body brace is a collected name (`for x in &self.bins {`).
            // Method-call tails (`.values() {`) are covered above.
            if is_ident(&toks[i], "for") {
                if let Some(body) = for_loop_body(toks, i) {
                    let prev = &toks[body - 1];
                    if prev.kind == TokKind::Ident && names.contains(prev.text.as_str()) {
                        out.push((prev.line, format!("(`{}`)", prev.text)));
                    }
                }
            }
        }
    }
}

/// Names bound to `HashMap`/`HashSet` anywhere in the file.
fn collect_hash_bindings(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        record_binding(toks, i, &mut names);
    }
    names
}

/// If `toks[i]` mentions a hash type, looks backward for the bound name.
fn record_binding(toks: &[Tok], i: usize, names: &mut BTreeSet<String>) {
    let t = &toks[i];
    if t.kind != TokKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
        return;
    }
    // Walk back over path/type noise to the `name :` or `name =` binding.
    let mut j = i;
    for _ in 0..12 {
        if j == 0 {
            return;
        }
        j -= 1;
        let p = &toks[j];
        let skip = is_punct(p, "::")
            || is_punct(p, "<")
            || is_punct(p, "&")
            || is_ident(p, "mut")
            || is_ident(p, "std")
            || is_ident(p, "collections")
            || is_ident(p, "Option")
            || is_ident(p, "Vec")
            || is_ident(p, "Box")
            || is_ident(p, "Arc")
            || is_ident(p, "Rc");
        if skip {
            continue;
        }
        if (is_punct(p, ":") || is_punct(p, "=")) && j > 0 && toks[j - 1].kind == TokKind::Ident {
            names.insert(toks[j - 1].text.clone());
        }
        return;
    }
}

/// For a `for` keyword at `i`, returns the index of the loop-body `{`
/// (`None` when this is `impl … for …`, a HRTB `for<'a>`, or malformed).
fn for_loop_body(toks: &[Tok], i: usize) -> Option<usize> {
    let depth = toks[i].depth;
    // Find the `in` at the same depth before any same-depth `{` or `;`.
    let mut j = i + 1;
    let mut saw_in = false;
    while j < toks.len() && j < i + 400 {
        let t = &toks[j];
        match t.kind {
            TokKind::Open(Delim::Brace) if t.depth == depth => {
                return if saw_in { Some(j) } else { None };
            }
            TokKind::Open(_) => {
                j = t.mate;
            }
            TokKind::Ident if t.text == "in" && t.depth == depth && !saw_in => {
                saw_in = true;
            }
            TokKind::Punct if t.text == ";" && t.depth == depth => return None,
            _ => {}
        }
        j += 1;
    }
    None
}
