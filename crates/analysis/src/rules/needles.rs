//! The legacy substring rules, re-expressed as token patterns: method
//! calls, `::` paths, and bare identifiers instead of raw substrings.
//! Strings and comments can no longer produce hits, and multi-line call
//! chains can no longer hide them. The eight ported rules are joined by
//! `storealloc`, born token-level alongside the bitmap store backend.

use super::{is_ident, is_punct, method_call_at, path_at, FileRule, Meta};
use crate::lex::Delim;
use crate::lex::TokKind;
use crate::stream::SourceFile;

/// What a pattern rule looks for in the token stream.
enum Pat {
    /// A method call `.name(` for any listed name.
    Method(&'static [&'static str]),
    /// A `::`-joined path suffix, e.g. `["Instant", "now"]`.
    Path(&'static [&'static str]),
    /// A bare identifier occurrence anywhere.
    Ident(&'static [&'static str]),
    /// An identifier used as a path head (`name::…`) — type positions
    /// like `rng: StdRng` do not match.
    PathHead(&'static str),
    /// `prefix::{ … name … }` use-tree groups, e.g. `sync::{Mutex, Arc}`.
    UseGroup {
        /// Path segment right before the brace group.
        prefix: &'static str,
        /// Banned names inside the group.
        names: &'static [&'static str],
    },
}

/// A rule made of token patterns.
pub struct PatternRule {
    meta: &'static Meta,
    pats: &'static [Pat],
}

impl FileRule for PatternRule {
    fn meta(&self) -> &'static Meta {
        self.meta
    }

    fn check(&self, sf: &SourceFile, out: &mut Vec<(u32, String)>) {
        let toks = &sf.toks;
        for i in 0..toks.len() {
            if toks[i].in_test && !self.meta.applies_in_tests {
                continue;
            }
            for pat in self.pats {
                match pat {
                    Pat::Method(names) => {
                        if let Some(m) = method_call_at(toks, i) {
                            if names.contains(&toks[m].text.as_str()) {
                                out.push((toks[m].line, String::new()));
                            }
                        }
                    }
                    Pat::Path(segs) => {
                        // Suffix match: `["sync", "Mutex"]` also catches
                        // `std::sync::Mutex`.
                        if path_at(toks, i, segs) {
                            out.push((toks[i].line, String::new()));
                        }
                    }
                    Pat::Ident(names) => {
                        if toks[i].kind == TokKind::Ident && names.contains(&toks[i].text.as_str())
                        {
                            out.push((toks[i].line, String::new()));
                        }
                    }
                    Pat::PathHead(name) => {
                        if is_ident(&toks[i], name)
                            && toks.get(i + 1).is_some_and(|t| is_punct(t, "::"))
                        {
                            out.push((toks[i].line, String::new()));
                        }
                    }
                    Pat::UseGroup { prefix, names } => {
                        if is_ident(&toks[i], prefix)
                            && toks.get(i + 1).is_some_and(|t| is_punct(t, "::"))
                            && toks
                                .get(i + 2)
                                .is_some_and(|t| t.kind == TokKind::Open(Delim::Brace))
                        {
                            let close = toks[i + 2].mate;
                            for t in &toks[i + 3..close] {
                                if t.kind == TokKind::Ident && names.contains(&t.text.as_str()) {
                                    out.push((t.line, String::new()));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

static UNWRAP: Meta = Meta {
    name: "unwrap",
    why: "propagate or handle errors in production code",
    applies_in_tests: false,
    only_prefixes: &[],
    // Figure-generation binaries: panic-on-error IS their error handling.
    exempt_prefixes: &["crates/bench/src/bin/", "crates/runtime/src/bin/"],
};

static RNG: Meta = Meta {
    name: "rng",
    why: "all randomness must be seeded from the experiment config",
    applies_in_tests: true,
    only_prefixes: &[],
    exempt_prefixes: &[],
};

static WALLCLOCK: Meta = Meta {
    name: "wallclock",
    why: "simulator-driven code must take time from the event clock",
    applies_in_tests: true,
    only_prefixes: &[],
    // The real-TCP host driver and its demo run on actual wall time.
    exempt_prefixes: &["crates/net/", "crates/runtime/", "examples/realtime_tcp"],
};

static STDMUTEX: Meta = Meta {
    name: "stdmutex",
    why: "the workspace mandates parking_lot locks",
    applies_in_tests: true,
    only_prefixes: &[],
    exempt_prefixes: &[],
};

static RECCLONE: Meta = Meta {
    name: "recclone",
    why: "the local scan path hands out Arc<Record> handles; deep copies \
          belong only at the wire boundary (core's to_wire)",
    applies_in_tests: false,
    // The store's scan surface is what the zero-copy query path rests on.
    only_prefixes: &["crates/store/src/mem.rs", "crates/store/src/dac.rs"],
    exempt_prefixes: &[],
};

static ROUTEALLOC: Meta = Meta {
    name: "routealloc",
    why: "the flat cut tree's descent paths are allocation-free by \
          construction; an allocation here silently re-grows the per-hop \
          routing cost the arena rewrite removed",
    applies_in_tests: false,
    only_prefixes: &["crates/histogram/src/flat.rs"],
    exempt_prefixes: &[],
};

static STOREALLOC: Meta = Meta {
    name: "storealloc",
    why: "the bit-sliced store and the sharded scatter/gather scan path \
          share records by Arc handle and size every buffer up front \
          (count_range is popcount-only and allocates nothing; per-shard \
          gathers remap ids in place in the vector the subtree scan \
          already returned); Vec::new grow-by-push, to_vec, or a deep \
          clone here quietly re-introduces the per-record copying and \
          realloc churn those layouts exist to avoid",
    applies_in_tests: false,
    only_prefixes: &["crates/store/src/bitmap.rs", "crates/store/src/sharded.rs"],
    exempt_prefixes: &[],
};

static RETRYTIMER: Meta = Meta {
    name: "retrytimer",
    why: "reliable-delivery timers are owned by core's reliability module; \
          arming or matching them elsewhere bypasses the ack/retry state \
          machine and its cancellation invariants",
    applies_in_tests: true,
    only_prefixes: &["crates/core/src/"],
    exempt_prefixes: &["crates/core/src/reliability.rs"],
};

static WORLDRNG: Meta = Meta {
    name: "worldrng",
    why: "netsim randomness must derive from the single world seed \
          (SimConfig::seed); waive construction sites that do",
    applies_in_tests: false,
    only_prefixes: &["crates/netsim/src/"],
    exempt_prefixes: &[],
};

/// The eight ported legacy rules, plus `storealloc` (added with the
/// bitmap store backend; mirrored into the legacy wall for parity).
pub fn rules() -> Vec<Box<dyn FileRule>> {
    vec![
        Box::new(PatternRule {
            meta: &UNWRAP,
            pats: &[Pat::Method(&["unwrap", "expect"])],
        }),
        Box::new(PatternRule {
            meta: &RNG,
            pats: &[
                Pat::Ident(&["thread_rng", "from_entropy", "from_os_rng"]),
                Pat::Path(&["rand", "random"]),
            ],
        }),
        Box::new(PatternRule {
            meta: &WALLCLOCK,
            pats: &[
                Pat::Path(&["SystemTime", "now"]),
                Pat::Path(&["Instant", "now"]),
            ],
        }),
        Box::new(PatternRule {
            meta: &STDMUTEX,
            pats: &[
                Pat::Path(&["sync", "Mutex"]),
                Pat::Path(&["sync", "RwLock"]),
                Pat::UseGroup {
                    prefix: "sync",
                    names: &["Mutex", "RwLock"],
                },
            ],
        }),
        Box::new(PatternRule {
            meta: &RECCLONE,
            pats: &[Pat::Method(&["clone"])],
        }),
        Box::new(PatternRule {
            meta: &ROUTEALLOC,
            pats: &[
                Pat::Path(&["Vec", "new"]),
                Pat::Method(&["to_vec", "clone"]),
            ],
        }),
        Box::new(PatternRule {
            meta: &STOREALLOC,
            pats: &[
                Pat::Path(&["Vec", "new"]),
                Pat::Method(&["to_vec", "clone"]),
            ],
        }),
        Box::new(PatternRule {
            meta: &RETRYTIMER,
            pats: &[Pat::Ident(&["KIND_OP_RETRY", "KIND_ANTI_ENTROPY"])],
        }),
        Box::new(PatternRule {
            meta: &WORLDRNG,
            pats: &[
                Pat::Ident(&["seed_from_u64", "from_seed"]),
                Pat::PathHead("StdRng"),
            ],
        }),
    ]
}
