//! `timer-token`: the per-crate timer token spaces must be provably
//! disjoint at build time.
//!
//! PR 4 asserts at runtime that core and overlay timer tokens never
//! collide; this rule promotes the check to static analysis. It collects
//! every `const TOKEN_TAG: u64 = …;` and `const KIND_*: u64 = …;` in
//! `crates/core/src/` and `crates/overlay/src/`, evaluates the constant
//! expressions (integer literals and `lit << lit` shifts), and verifies:
//!
//! * every kind fits the token layout (`kind < 256`, packed at bits 48..56);
//! * kind values are unique within a crate;
//! * `TOKEN_TAG` values are unique across crates (and present wherever
//!   kinds are defined);
//! * the composed `tag | kind << 48` spaces are globally disjoint.

use super::{is_ident, is_punct, GlobalRule, Meta};
use crate::diag::Diagnostic;
use crate::lex::TokKind;
use crate::stream::{SourceFile, Tok};
use std::collections::BTreeMap;

pub static META: Meta = Meta {
    name: "timer-token",
    why: "timer token spaces must be statically disjoint across crates",
    applies_in_tests: false,
    only_prefixes: &["crates/core/src/", "crates/overlay/src/"],
    exempt_prefixes: &[],
};

/// One collected `const` of interest.
struct TimerConst {
    crate_name: String,
    name: String,
    value: Option<u64>,
    rel_path: String,
    line: u32,
    text: String,
}

#[derive(Default)]
pub struct TimerTokenRule {
    consts: Vec<TimerConst>,
}

impl GlobalRule for TimerTokenRule {
    fn meta(&self) -> &'static Meta {
        &META
    }

    fn scan_file(&mut self, sf: &SourceFile) {
        if !META.in_scope(&sf.rel_path) {
            return;
        }
        let crate_name = sf
            .rel_path
            .split('/')
            .nth(1)
            .unwrap_or("<unknown>")
            .to_owned();
        let toks = &sf.toks;
        for i in 0..toks.len() {
            if toks[i].in_test || !is_ident(&toks[i], "const") {
                continue;
            }
            let Some(name_tok) = toks.get(i + 1) else {
                continue;
            };
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            let name = name_tok.text.clone();
            if name != "TOKEN_TAG" && !name.starts_with("KIND_") {
                continue;
            }
            // Expect `: u64 = <expr> ;`.
            if !(toks.get(i + 2).is_some_and(|t| is_punct(t, ":"))
                && toks.get(i + 3).is_some_and(|t| is_ident(t, "u64"))
                && toks.get(i + 4).is_some_and(|t| is_punct(t, "=")))
            {
                continue;
            }
            let expr_start = i + 5;
            let expr_end = (expr_start..toks.len())
                .find(|&k| is_punct(&toks[k], ";"))
                .unwrap_or(toks.len());
            self.consts.push(TimerConst {
                crate_name: crate_name.clone(),
                name,
                value: eval(&toks[expr_start..expr_end]),
                rel_path: sf.rel_path.clone(),
                line: name_tok.line,
                text: sf.line_text(name_tok.line).to_owned(),
            });
        }
    }

    fn finish(&mut self, out: &mut Vec<Diagnostic>) {
        let mut diag = |c: &TimerConst, why: String| {
            out.push(Diagnostic {
                rel_path: c.rel_path.clone(),
                line: c.line,
                rule: META.name,
                why,
                text: c.text.clone(),
            });
        };

        // Unevaluable consts are themselves findings: the proof must be total.
        for c in &self.consts {
            if c.value.is_none() {
                diag(
                    c,
                    format!(
                        "cannot statically evaluate `{}`; use an integer \
                         literal or `lit << lit`",
                        c.name
                    ),
                );
            }
        }

        // Per-crate: tag presence/uniqueness, kind range and uniqueness.
        let mut tags: BTreeMap<&str, (&TimerConst, u64)> = BTreeMap::new();
        for c in &self.consts {
            let Some(v) = c.value else { continue };
            if c.name != "TOKEN_TAG" {
                continue;
            }
            if let Some((first, fv)) = tags.get(c.crate_name.as_str()) {
                diag(
                    c,
                    format!(
                        "duplicate TOKEN_TAG in crate `{}` (also {}:{}, {:#x} vs {:#x})",
                        c.crate_name, first.rel_path, first.line, fv, v
                    ),
                );
            } else {
                tags.insert(&c.crate_name, (c, v));
            }
        }
        let mut kinds_seen: BTreeMap<(&str, u64), &TimerConst> = BTreeMap::new();
        for c in &self.consts {
            let Some(v) = c.value else { continue };
            if !c.name.starts_with("KIND_") {
                continue;
            }
            if v >= 256 {
                diag(
                    c,
                    format!("{} = {} does not fit the 8-bit kind field", c.name, v),
                );
                continue;
            }
            if !tags.contains_key(c.crate_name.as_str()) {
                diag(
                    c,
                    format!(
                        "crate `{}` defines timer kinds but no TOKEN_TAG",
                        c.crate_name
                    ),
                );
            }
            if let Some(first) = kinds_seen.get(&(c.crate_name.as_str(), v)) {
                if first.name != c.name {
                    diag(
                        c,
                        format!(
                            "kind value {} collides with {} ({}:{}) in crate `{}`",
                            v, first.name, first.rel_path, first.line, c.crate_name
                        ),
                    );
                }
            } else {
                kinds_seen.insert((&c.crate_name, v), c);
            }
        }

        // Cross-crate: tags distinct, composed token spaces disjoint.
        let mut by_tag: BTreeMap<u64, &str> = BTreeMap::new();
        for (krate, (c, v)) in &tags {
            if let Some(first) = by_tag.get(v) {
                diag(
                    c,
                    format!(
                        "TOKEN_TAG {:#x} of crate `{}` collides with crate `{}`",
                        v, krate, first
                    ),
                );
            } else {
                by_tag.insert(*v, krate);
            }
        }
        let mut tokens: BTreeMap<u64, &TimerConst> = BTreeMap::new();
        for c in &self.consts {
            let Some(v) = c.value else { continue };
            if !c.name.starts_with("KIND_") || v >= 256 {
                continue;
            }
            let Some((_, tag)) = tags.get(c.crate_name.as_str()) else {
                continue;
            };
            let token = tag | (v << 48);
            if let Some(first) = tokens.get(&token) {
                if first.crate_name != c.crate_name || first.name != c.name {
                    diag(
                        c,
                        format!(
                            "composed timer token {:#x} collides with {} ({}:{})",
                            token, first.name, first.rel_path, first.line
                        ),
                    );
                }
            } else {
                tokens.insert(token, c);
            }
        }
    }
}

/// Evaluates `lit` or `lit << lit` (the only shapes the token consts use).
fn eval(expr: &[Tok]) -> Option<u64> {
    match expr {
        [a] => int(a),
        [a, sh1, sh2, b] if is_punct(sh1, "<") && is_punct(sh2, "<") => {
            let (a, b) = (int(a)?, int(b)?);
            if b >= 64 {
                return None;
            }
            Some(a << b)
        }
        _ => None,
    }
}

/// Parses an integer literal token (decimal / hex / octal / binary,
/// `_` separators, optional type suffix).
fn int(t: &Tok) -> Option<u64> {
    if t.kind != TokKind::Num {
        return None;
    }
    let s: String = t.text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = match s.as_bytes() {
        [b'0', b'x' | b'X', ..] => (16, &s[2..]),
        [b'0', b'o' | b'O', ..] => (8, &s[2..]),
        [b'0', b'b' | b'B', ..] => (2, &s[2..]),
        _ => (10, s.as_str()),
    };
    // Split off a type suffix (`u64`, `usize`, …).
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    let (num, suffix) = digits.split_at(end);
    if num.is_empty() {
        return None;
    }
    const SUFFIXES: [&str; 12] = [
        "", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "isize",
    ];
    if !SUFFIXES.contains(&suffix) {
        return None;
    }
    u64::from_str_radix(num, radix).ok()
}
