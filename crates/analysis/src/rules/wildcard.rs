//! `handler-wildcard`: no `_ =>` arms in dispatch matches over the wire
//! message enums.
//!
//! A wildcard arm in a protocol dispatch match means a newly added wire
//! variant compiles silently and is dropped at runtime — the compiler's
//! exhaustiveness check is exactly the safety net the match should keep.
//! The rule flags any top-level `_ =>` arm inside a production `match`
//! whose arms name one of the wire enums.

use super::{is_ident, is_punct, FileRule, Meta};
use crate::lex::Delim;
use crate::lex::TokKind;
use crate::stream::SourceFile;

pub static META: Meta = Meta {
    name: "handler-wildcard",
    why: "wildcard arm in a wire-message dispatch: new protocol variants \
          would be silently dropped; enumerate the remaining variants",
    applies_in_tests: false,
    only_prefixes: &[],
    exempt_prefixes: &[],
};

/// Enums carried on the wire whose dispatch must stay exhaustive.
const DISPATCH_ENUMS: [&str; 3] = ["MindPayload", "OverlayMsg", "BaselineMsg"];

pub struct HandlerWildcardRule;

impl FileRule for HandlerWildcardRule {
    fn meta(&self) -> &'static Meta {
        &META
    }

    fn check(&self, sf: &SourceFile, out: &mut Vec<(u32, String)>) {
        let toks = &sf.toks;
        for i in 0..toks.len() {
            if toks[i].in_test || !is_ident(&toks[i], "match") {
                continue;
            }
            let Some(open) = match_body(toks, i) else {
                continue;
            };
            let arms = arm_patterns(toks, open);
            // The match is a wire dispatch if any arm *pattern* names a
            // wire enum (`MindPayload::Insert { .. } => …`). Enum paths
            // in arm bodies don't count — a timer-kind match that happens
            // to send an OverlayMsg is not a dispatch.
            let dispatches = arms.iter().any(|&(p, arrow)| {
                (p..arrow).any(|k| {
                    toks[k].kind == TokKind::Ident
                        && DISPATCH_ENUMS.contains(&toks[k].text.as_str())
                        && toks.get(k + 1).is_some_and(|t| is_punct(t, "::"))
                })
            });
            if !dispatches {
                continue;
            }
            for &(p, arrow) in &arms {
                // `_ =>` and `_ if guard =>` are both wildcards.
                if is_ident(&toks[p], "_") && (p + 1 == arrow || is_ident(&toks[p + 1], "if")) {
                    out.push((toks[p].line, String::new()));
                }
            }
        }
    }
}

/// Splits a match body (brace group at `open`) into arms, returning
/// `(pattern_start, arrow)` index pairs; the span covers the pattern and
/// any guard. Arm bodies are hopped over (block bodies via their mate,
/// expression bodies to the next same-depth `,`).
fn arm_patterns(toks: &[crate::stream::Tok], open: usize) -> Vec<(usize, usize)> {
    let close = toks[open].mate;
    let arm_depth = toks[open].depth + 1;
    let mut arms = Vec::new();
    let mut p = open + 1;
    while p < close {
        let Some(arrow) =
            (p..close).find(|&k| toks[k].depth == arm_depth && is_punct(&toks[k], "=>"))
        else {
            break;
        };
        arms.push((p, arrow));
        // Advance past the body to the next pattern start.
        let mut b = arrow + 1;
        if b < close && toks[b].kind == TokKind::Open(Delim::Brace) && toks[b].depth == arm_depth {
            b = toks[b].mate + 1;
        } else {
            while b < close && !(toks[b].depth == arm_depth && is_punct(&toks[b], ",")) {
                if let TokKind::Open(_) = toks[b].kind {
                    b = toks[b].mate;
                }
                b += 1;
            }
        }
        if b < close && is_punct(&toks[b], ",") {
            b += 1;
        }
        p = b;
    }
    arms
}

/// For a `match` keyword at `i`, the index of the body `{`.
///
/// Struct literals are illegal in scrutinee position, so the first brace
/// at the keyword's depth is the body. Scrutinee sub-expressions in
/// parens/brackets are hopped over via their mates.
fn match_body(toks: &[crate::stream::Tok], i: usize) -> Option<usize> {
    let depth = toks[i].depth;
    let mut j = i + 1;
    while j < toks.len() && j < i + 400 {
        let t = &toks[j];
        match t.kind {
            TokKind::Open(Delim::Brace) if t.depth == depth => return Some(j),
            TokKind::Open(_) => j = t.mate,
            TokKind::Punct if t.text == ";" && t.depth == depth => return None,
            _ => {}
        }
        j += 1;
    }
    None
}
