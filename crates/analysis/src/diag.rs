//! Analyzer diagnostics.

use std::fmt;

/// One analyzer finding, pinned to a file and line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative, `/`-separated path.
    pub rel_path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name.
    pub rule: &'static str,
    /// Rationale (rule `why`, possibly with hit-specific detail appended).
    pub why: String,
    /// Trimmed source line (context for the reader).
    pub text: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.rel_path, self.line, self.rule, self.why, self.text
        )
    }
}
