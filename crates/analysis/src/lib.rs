//! AST-level determinism analyzer for the MIND workspace.
//!
//! Replaces the substring lint wall (`crates/audit/src/bin/lint.rs`) with
//! a token-tree semantic pass: every workspace `.rs` file is lexed into a
//! delimiter-matched token stream with exact `#[cfg(test)]` scoping, and a
//! rule engine runs over it. String literals and comments can neither
//! produce false hits nor hide real ones, and rules can see structure the
//! old scanner could not (method receivers, paths, match arms, constant
//! expressions).
//!
//! The crate registry (`crates.io`) is unreachable from this workspace, so
//! `syn` is not available; `lex`/`stream` are a purpose-built stand-in
//! that plays its role for the token-level analyses here (the same
//! offline-stand-in pattern as `vendor/`). See DESIGN.md §12 for the rule
//! catalog.

pub mod diag;
pub mod lex;
pub mod rules;
pub mod stream;

pub use diag::Diagnostic;

use rules::GlobalRule;
use stream::SourceFile;

/// Runs every rule over `files` (`(workspace-relative path, source)`
/// pairs) and returns the surviving diagnostics, sorted and deduplicated.
///
/// Pure function of its input: the driver binary owns all file I/O, and
/// fixture tests call this directly.
pub fn analyze_sources(files: &[(String, String)]) -> Vec<Diagnostic> {
    let file_rules = rules::file_rules();
    let known_rules = rules::rule_names();
    let mut timer = rules::TimerTokenRule::default();
    let mut diags: Vec<Diagnostic> = Vec::new();

    for (rel_path, src) in files {
        let sf = match SourceFile::parse(rel_path, src) {
            Ok(sf) => sf,
            // A file the analyzer cannot read structurally is itself a
            // finding — the pass must be total over the workspace.
            Err(e) => {
                diags.push(Diagnostic {
                    rel_path: rel_path.clone(),
                    line: e.line,
                    rule: "syntax",
                    why: e.msg,
                    text: String::new(),
                });
                continue;
            }
        };

        for rule in &file_rules {
            let meta = rule.meta();
            if !meta.in_scope(rel_path) || (sf.is_test_file && !meta.applies_in_tests) {
                continue;
            }
            let mut hits: Vec<(u32, String)> = Vec::new();
            rule.check(&sf, &mut hits);
            for (line, detail) in hits {
                if sf.waived(meta.name, line) {
                    continue;
                }
                let why = if detail.is_empty() {
                    meta.why.to_owned()
                } else {
                    format!("{} {}", meta.why, detail)
                };
                diags.push(Diagnostic {
                    rel_path: rel_path.clone(),
                    line,
                    rule: meta.name,
                    why,
                    text: sf.line_text(line).to_owned(),
                });
            }
        }

        // waiver-justified: every waiver needs a reason and a real rule
        // name. Not itself waivable.
        for w in &sf.waivers {
            if !known_rules.contains(&w.rule.as_str()) {
                diags.push(Diagnostic {
                    rel_path: rel_path.clone(),
                    line: w.line,
                    rule: "waiver-justified",
                    why: format!("waiver names unknown rule `{}`", w.rule),
                    text: sf.line_text(w.line).to_owned(),
                });
            } else if !w.justified {
                diags.push(Diagnostic {
                    rel_path: rel_path.clone(),
                    line: w.line,
                    rule: "waiver-justified",
                    why: format!(
                        "lint:allow({}) carries no justification; say why \
                         the waiver is sound",
                        w.rule
                    ),
                    text: sf.line_text(w.line).to_owned(),
                });
            }
        }

        timer.scan_file(&sf);
    }

    timer.finish(&mut diags);
    diags.sort();
    diags.dedup();
    diags
}
