//! The annotated token stream rules scan: delimiter structure plus exact
//! `#[cfg(test)]` scoping.
//!
//! Delimiters are matched on real tokens (the lexer already removed
//! strings and comments), so brace counting cannot be fooled the way the
//! legacy line scanner's was. Test scope is an attribute fact, not a
//! heuristic: a `#[cfg(test)]` attribute marks the next item's brace group
//! (and everything inside it) as test code.

use crate::lex::{self, Delim, LexError, TokKind, Waiver};

/// One token of the annotated stream.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Lexeme (placeholder for literals).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// `true` inside a `#[cfg(test)]`-scoped item.
    pub in_test: bool,
    /// For [`TokKind::Open`]: index of the matching close token.
    /// For [`TokKind::Close`]: index of the matching open token.
    /// Unused otherwise.
    pub mate: usize,
    /// Delimiter nesting depth (tokens at the file top level are 0; an
    /// `Open` carries the depth *outside* it, its contents are depth+1).
    pub depth: u32,
}

/// A fully prepared source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative, `/`-separated path.
    pub rel_path: String,
    /// Source lines (for diagnostic snippets), 0-indexed.
    pub lines: Vec<String>,
    /// Annotated tokens.
    pub toks: Vec<Tok>,
    /// Comment waivers.
    pub waivers: Vec<Waiver>,
    /// `true` when the whole file is test/bench/example code by path.
    pub is_test_file: bool,
}

/// A structural failure preparing a file (lex error, unbalanced
/// delimiters) — always a hard analyzer failure, never ignored.
#[derive(Debug)]
pub struct StreamError {
    /// 1-based line.
    pub line: u32,
    /// Cause.
    pub msg: String,
}

impl From<LexError> for StreamError {
    fn from(e: LexError) -> Self {
        StreamError {
            line: e.line,
            msg: e.msg,
        }
    }
}

impl SourceFile {
    /// Lexes and annotates `src`.
    pub fn parse(rel_path: &str, src: &str) -> Result<SourceFile, StreamError> {
        let lexed = lex::lex(src)?;
        let is_test_file = path_is_test(rel_path);
        let mut toks: Vec<Tok> = lexed
            .tokens
            .into_iter()
            .map(|t| Tok {
                kind: t.kind,
                text: t.text,
                line: t.line,
                in_test: is_test_file,
                mate: usize::MAX,
                depth: 0,
            })
            .collect();
        match_delims(&mut toks)?;
        if !is_test_file {
            mark_cfg_test(&mut toks);
        }
        Ok(SourceFile {
            rel_path: rel_path.to_owned(),
            lines: src.lines().map(str::to_owned).collect(),
            toks,
            waivers: lexed.waivers,
            is_test_file,
        })
    }

    /// The trimmed text of a 1-based source line (for diagnostics).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map_or("", |s| s.trim())
    }

    /// `true` if a waiver for `rule` sits on `line` or the line above.
    pub fn waived(&self, rule: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.rule == rule && (w.line == line || w.line + 1 == line))
    }
}

/// `true` for paths whose entire contents are test/bench/example code.
fn path_is_test(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

/// Fills `mate` and `depth` for every delimiter token.
fn match_delims(toks: &mut [Tok]) -> Result<(), StreamError> {
    let mut stack: Vec<(usize, Delim)> = Vec::new();
    for i in 0..toks.len() {
        toks[i].depth = stack.len() as u32;
        match toks[i].kind {
            TokKind::Open(d) => stack.push((i, d)),
            TokKind::Close(d) => {
                let Some((open, od)) = stack.pop() else {
                    return Err(StreamError {
                        line: toks[i].line,
                        msg: format!("unmatched closing {:?}", d),
                    });
                };
                if od != d {
                    return Err(StreamError {
                        line: toks[i].line,
                        msg: format!("mismatched delimiters: {:?} closed by {:?}", od, d),
                    });
                }
                toks[open].mate = i;
                toks[i].mate = open;
                toks[i].depth = toks[open].depth;
            }
            _ => {}
        }
    }
    if let Some((open, d)) = stack.pop() {
        return Err(StreamError {
            line: toks[open].line,
            msg: format!("unclosed {:?}", d),
        });
    }
    Ok(())
}

/// Marks the brace group of every `#[cfg(test)]`-attributed item (and all
/// nested tokens) as test code.
///
/// The flag set by an attribute survives across further attributes and the
/// item header (`mod tests`, `fn t(..) -> X`), and is cleared by a `;` at
/// the same depth (`#[cfg(test)] use …;` guards no braces).
fn mark_cfg_test(toks: &mut [Tok]) {
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            let attr_close = toks[i + 1].mate; // the `]`
            let depth = toks[i].depth;
            // Scan forward for the attributed item's brace group.
            let mut j = attr_close + 1;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Open(Delim::Brace) if toks[j].depth == depth => {
                        let close = toks[j].mate;
                        for t in &mut toks[j..=close] {
                            t.in_test = true;
                        }
                        break;
                    }
                    // Non-brace groups (parameter lists, other attributes)
                    // are skipped wholesale.
                    TokKind::Open(_) => j = toks[j].mate,
                    TokKind::Punct if toks[j].text == ";" && toks[j].depth == depth => break,
                    _ => {}
                }
                j += 1;
            }
            i = attr_close + 1;
            continue;
        }
        i += 1;
    }
}

/// `true` if `toks[i..]` starts the exact attribute `#[cfg(test)]`.
fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    let t = |k: usize| toks.get(i + k);
    t(0).is_some_and(|x| x.kind == TokKind::Punct && x.text == "#")
        && t(1).is_some_and(|x| x.kind == TokKind::Open(Delim::Bracket))
        && t(2).is_some_and(|x| x.kind == TokKind::Ident && x.text == "cfg")
        && t(3).is_some_and(|x| x.kind == TokKind::Open(Delim::Paren))
        && t(4).is_some_and(|x| x.kind == TokKind::Ident && x.text == "test")
        && t(5).is_some_and(|x| x.kind == TokKind::Close(Delim::Paren))
        && t(6).is_some_and(|x| x.kind == TokKind::Close(Delim::Bracket))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/a.rs", src).unwrap()
    }

    fn ident_flags(sf: &SourceFile, name: &str) -> Vec<bool> {
        sf.toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == name)
            .map(|t| t.in_test)
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_scoped_exactly() {
        let src = "fn a() { before(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { inside(); }\n}\n\
                   fn b() { after(); }\n";
        let sf = parse(src);
        assert_eq!(ident_flags(&sf, "before"), vec![false]);
        assert_eq!(ident_flags(&sf, "inside"), vec![true]);
        assert_eq!(ident_flags(&sf, "after"), vec![false]);
    }

    #[test]
    fn braces_in_strings_do_not_leak_test_scope() {
        // The regression the legacy scanner's brace counter had: a `"{"`
        // inside a test mod made it think the mod never closed.
        let src = "#[cfg(test)]\nmod tests {\n let s = \"{\";\n}\n\
                   fn prod() { after_string_brace(); }\n";
        let sf = parse(src);
        assert_eq!(ident_flags(&sf, "after_string_brace"), vec![false]);
    }

    #[test]
    fn cfg_test_fn_with_params_is_scoped() {
        let src = "#[cfg(test)]\nfn helper(x: u32) -> u32 { inner() }\nfn p() { outer(); }\n";
        let sf = parse(src);
        assert_eq!(ident_flags(&sf, "inner"), vec![true]);
        assert_eq!(ident_flags(&sf, "outer"), vec![false]);
    }

    #[test]
    fn cfg_test_use_guards_nothing() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn p() { body(); }\n";
        let sf = parse(src);
        assert_eq!(ident_flags(&sf, "body"), vec![false]);
    }

    #[test]
    fn cfg_not_test_is_not_test_scope() {
        let src = "#[cfg(not(test))]\nfn p() { body(); }\n";
        let sf = parse(src);
        assert_eq!(ident_flags(&sf, "body"), vec![false]);
    }

    #[test]
    fn attributes_between_cfg_test_and_item_are_crossed() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() { inside(); } }\n";
        let sf = parse(src);
        assert_eq!(ident_flags(&sf, "inside"), vec![true]);
    }

    #[test]
    fn test_file_paths_are_wholly_test() {
        let sf = SourceFile::parse("crates/x/tests/a.rs", "fn t() { x(); }").unwrap();
        assert_eq!(ident_flags(&sf, "x"), vec![true]);
    }

    #[test]
    fn unbalanced_delims_error() {
        assert!(SourceFile::parse("crates/x/src/a.rs", "fn f() {").is_err());
        assert!(SourceFile::parse("crates/x/src/a.rs", "fn f() )").is_err());
    }

    #[test]
    fn depth_and_mates() {
        let sf = parse("fn f(a: u32) { g(a); }");
        let open_brace = sf
            .toks
            .iter()
            .position(|t| t.kind == TokKind::Open(Delim::Brace))
            .unwrap();
        let close = sf.toks[open_brace].mate;
        assert_eq!(sf.toks[close].kind, TokKind::Close(Delim::Brace));
        assert_eq!(sf.toks[close].mate, open_brace);
        assert_eq!(sf.toks[open_brace].depth, 0);
        assert_eq!(sf.toks[open_brace + 1].depth, 1);
    }
}
