//! Anomaly injection with exact ground truth (the Section 5 experiment).
//!
//! The paper validated MIND against anomalies found by Lakhina et al.'s
//! off-line PCA analysis of Abilene traces: alpha flows, DoS attacks and
//! port scans. We cannot redistribute those traces, so anomalies are
//! *injected* into the synthetic traffic with known parameters; the
//! Figure 17 experiment then measures (a) whether the circumscribing MIND
//! query returns a superset of the anomaly's records, (b) how tight that
//! superset is, and (c) the response time — with recall computable exactly
//! because the ground truth is known by construction.

use crate::flow::RawFlow;
use mind_types::HyperRect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three anomaly classes of the Section 5 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// An unusually large point-to-point transfer (detected on Index-2 via
    /// an octets threshold).
    AlphaFlow {
        /// Total bytes transferred during the anomaly.
        octets: u64,
    },
    /// Many sources flooding one destination (detected on Index-1 via the
    /// fanout threshold).
    Dos {
        /// Number of attacking hosts.
        sources: u32,
        /// Connections each attacker opens per window.
        conns_per_source: u32,
    },
    /// One source probing many hosts/ports in a destination prefix
    /// (detected on Index-1 via the fanout threshold).
    PortScan {
        /// Number of probed `(host, port)` targets per window.
        targets: u32,
    },
}

/// One injected anomaly.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// The anomaly class and magnitude.
    pub kind: AnomalyKind,
    /// Start time (seconds since trace epoch).
    pub start: u64,
    /// Duration in seconds.
    pub duration: u64,
    /// Source /16 prefix of the attacker(s).
    pub src_prefix: u32,
    /// Destination /16 prefix of the victim(s).
    pub dst_prefix: u32,
    /// The backbone routers on the anomaly's path — each observes the
    /// flows, so MIND's answer identifies the path (the paper's DoS
    /// back-tracking result).
    pub routers: Vec<u16>,
}

impl Anomaly {
    /// The raw flows this anomaly adds at router `router` in the window
    /// starting at `window_start` (empty when outside the anomaly's time
    /// span or off its path).
    pub fn window_flows(
        &self,
        seed: u64,
        window_start: u64,
        window_len: u64,
        router: u16,
    ) -> Vec<RawFlow> {
        if !self.routers.contains(&router) {
            return Vec::new();
        }
        let end = self.start + self.duration;
        if window_start + window_len <= self.start || window_start >= end {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(
            seed ^ (window_start.wrapping_mul(0xD134_2543_DE82_EF95)) ^ router as u64,
        );
        let mut flows = Vec::new();
        let t = |rng: &mut StdRng| window_start + rng.random_range(0..window_len);
        match self.kind {
            AnomalyKind::AlphaFlow { octets } => {
                // A handful of very large flows between two fixed hosts.
                let src = self.src_prefix | 77;
                let dst = self.dst_prefix | 7;
                let windows = (self.duration / window_len).max(1);
                let per_window = octets / windows;
                for i in 0..4u64 {
                    flows.push(RawFlow {
                        src_ip: src,
                        dst_ip: dst,
                        src_port: 33_000 + i as u16,
                        dst_port: 80,
                        bytes: per_window / 4,
                        packets: (per_window / 4 / 1400).max(1) as u32,
                        start: t(&mut rng),
                        router,
                    });
                }
            }
            AnomalyKind::Dos {
                sources,
                conns_per_source,
            } => {
                let dst = self.dst_prefix | 1;
                for s in 0..sources {
                    let src = self.src_prefix | (s + 2);
                    for c in 0..conns_per_source {
                        flows.push(RawFlow {
                            src_ip: src,
                            dst_ip: dst,
                            src_port: (10_000 + s * 13 + c) as u16,
                            dst_port: 80,
                            bytes: 60,
                            packets: 1,
                            start: t(&mut rng),
                            router,
                        });
                    }
                }
            }
            AnomalyKind::PortScan { targets } => {
                let src = self.src_prefix | 99;
                for i in 0..targets {
                    flows.push(RawFlow {
                        src_ip: src,
                        dst_ip: self.dst_prefix | (i % 65_536),
                        src_port: 55_555,
                        dst_port: (1 + (i % 1024)) as u16,
                        bytes: 40,
                        packets: 1,
                        start: t(&mut rng),
                        router,
                    });
                }
            }
        }
        flows
    }

    /// The aggregate fanout this anomaly contributes per window — what an
    /// Index-1 threshold query must exceed to catch it.
    pub fn expected_fanout(&self) -> u64 {
        match self.kind {
            AnomalyKind::AlphaFlow { .. } => 4,
            AnomalyKind::Dos {
                sources,
                conns_per_source,
            } => (sources * conns_per_source) as u64,
            AnomalyKind::PortScan { targets } => targets as u64,
        }
    }

    /// The circumscribing Index-1 query of Section 5: *all records with
    /// fanout greater than `threshold` within a 5-minute interval around
    /// the anomaly* (destination and source wildcarded).
    pub fn index1_query(&self, fanout_threshold: u64, fanout_bound: u64) -> HyperRect {
        let t0 = self.start.saturating_sub(30);
        HyperRect::new(
            vec![0, t0, fanout_threshold],
            vec![u32::MAX as u64, t0 + 300, fanout_bound],
        )
    }

    /// The circumscribing Index-2 query of Section 5: *all records with
    /// octets greater than `threshold` within a 5-minute interval*.
    pub fn index2_query(&self, octet_threshold: u64, octet_bound: u64) -> HyperRect {
        let t0 = self.start.saturating_sub(30);
        HyperRect::new(
            vec![0, t0, octet_threshold],
            vec![u32::MAX as u64, t0 + 300, octet_bound],
        )
    }

    /// `true` if an aggregate record (as `(dst_prefix, src_prefix)` with
    /// this anomaly's time span) was produced by this anomaly — the ground
    /// truth predicate for recall accounting.
    pub fn matches(&self, dst_prefix: u32, src_prefix: u32, window_start: u64) -> bool {
        dst_prefix == self.dst_prefix
            && src_prefix == self.src_prefix
            && window_start + 30 > self.start
            && window_start < self.start + self.duration
    }
}

/// The Section 5 anomaly set: the same mix the paper searched for on its
/// December 18, 2003 Abilene trace — three alpha flows, two DoS attacks
/// and a port scan, with router paths through the Abilene backbone.
pub fn section5_anomalies() -> Vec<Anomaly> {
    vec![
        Anomaly {
            kind: AnomalyKind::AlphaFlow { octets: 64 << 20 },
            start: 300,
            duration: 120,
            src_prefix: 0x0A64_0000,
            dst_prefix: 0xC0A8_0000,
            routers: vec![1, 3, 4], // SNVA, DNVR, KSCY
        },
        Anomaly {
            kind: AnomalyKind::AlphaFlow { octets: 48 << 20 },
            start: 600,
            duration: 90,
            src_prefix: 0x0A65_0000,
            dst_prefix: 0xC0A9_0000,
            routers: vec![0, 6], // STTL, CHIN
        },
        Anomaly {
            kind: AnomalyKind::AlphaFlow { octets: 96 << 20 },
            start: 900,
            duration: 150,
            src_prefix: 0x0A66_0000,
            dst_prefix: 0xC0AA_0000,
            routers: vec![2, 5], // LOSA, HSTN
        },
        Anomaly {
            kind: AnomalyKind::Dos {
                sources: 400,
                conns_per_source: 5,
            },
            start: 450,
            duration: 120,
            src_prefix: 0x0B00_0000,
            dst_prefix: 0xC0AB_0000,
            routers: vec![6, 3, 7, 4, 2, 1], // CHIN DNVR IPLS KSCY LOSA SNVA
        },
        Anomaly {
            kind: AnomalyKind::Dos {
                sources: 600,
                conns_per_source: 4,
            },
            start: 1100,
            duration: 100,
            src_prefix: 0x0B01_0000,
            dst_prefix: 0xC0AC_0000,
            routers: vec![6, 7], // CHIN IPLS
        },
        Anomaly {
            kind: AnomalyKind::PortScan { targets: 2000 },
            start: 800,
            duration: 180,
            src_prefix: 0x0B02_0000,
            dst_prefix: 0xC0AD_0000,
            routers: vec![8, 9], // ATLA WASH
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate_window;
    use crate::schemas::{index1_record, FANOUT_THRESHOLD};

    #[test]
    fn dos_flows_have_large_fanout_after_aggregation() {
        let a = Anomaly {
            kind: AnomalyKind::Dos {
                sources: 400,
                conns_per_source: 5,
            },
            start: 0,
            duration: 60,
            src_prefix: 0x0B00_0000,
            dst_prefix: 0xC0AB_0000,
            routers: vec![0],
        };
        let flows = a.window_flows(1, 0, 30, 0);
        assert_eq!(flows.len(), 2000);
        let aggs = aggregate_window(&flows, 0, 30);
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].fanout, 2000);
        assert!(aggs[0].fanout >= a.expected_fanout());
        // The record passes the Index-1 filter easily.
        assert!(index1_record(&aggs[0]).is_some());
        assert!(aggs[0].fanout >= FANOUT_THRESHOLD);
    }

    #[test]
    fn off_path_and_off_time_windows_empty() {
        let a = Anomaly {
            kind: AnomalyKind::PortScan { targets: 100 },
            start: 300,
            duration: 60,
            src_prefix: 1 << 16,
            dst_prefix: 2 << 16,
            routers: vec![5],
        };
        assert!(a.window_flows(1, 300, 30, 4).is_empty(), "wrong router");
        assert!(a.window_flows(1, 0, 30, 5).is_empty(), "before start");
        assert!(a.window_flows(1, 360, 30, 5).is_empty(), "after end");
        assert!(!a.window_flows(1, 330, 30, 5).is_empty(), "in-window");
    }

    #[test]
    fn alpha_flow_octets_dominate() {
        let a = Anomaly {
            kind: AnomalyKind::AlphaFlow { octets: 64 << 20 },
            start: 0,
            duration: 120,
            src_prefix: 3 << 16,
            dst_prefix: 4 << 16,
            routers: vec![0],
        };
        let flows = a.window_flows(1, 0, 30, 0);
        let total: u64 = flows.iter().map(|f| f.bytes).sum();
        assert!(
            total >= (64 << 20) / 4 - 16,
            "window carries its share, got {total}"
        );
    }

    #[test]
    fn query_rect_covers_anomaly_records() {
        let a = &section5_anomalies()[3]; // first DoS
        let q = a.index1_query(1500, 5024);
        // An aggregate from the anomaly: fanout 2000, ts at start.
        assert!(q.contains_point(&[a.dst_prefix as u64, a.start, 2000]));
        // Normal traffic with small fanout is excluded.
        assert!(!q.contains_point(&[a.dst_prefix as u64, a.start, 40]));
    }

    #[test]
    fn ground_truth_predicate() {
        let a = &section5_anomalies()[5]; // port scan, start 800 dur 180
        assert!(a.matches(a.dst_prefix, a.src_prefix, 810));
        assert!(
            a.matches(a.dst_prefix, a.src_prefix, 780),
            "window overlapping start"
        );
        assert!(!a.matches(a.dst_prefix, a.src_prefix, 980));
        assert!(!a.matches(a.dst_prefix + 1, a.src_prefix, 810));
    }

    #[test]
    fn section5_set_matches_paper_mix() {
        let all = section5_anomalies();
        let alphas = all
            .iter()
            .filter(|a| matches!(a.kind, AnomalyKind::AlphaFlow { .. }))
            .count();
        let dos = all
            .iter()
            .filter(|a| matches!(a.kind, AnomalyKind::Dos { .. }))
            .count();
        let scans = all
            .iter()
            .filter(|a| matches!(a.kind, AnomalyKind::PortScan { .. }))
            .count();
        assert_eq!((alphas, dos, scans), (3, 2, 1));
        // Every DoS/scan clears the paper's 1500-fanout query threshold.
        for a in &all {
            if !matches!(a.kind, AnomalyKind::AlphaFlow { .. }) {
                assert!(a.expected_fanout() > 1500);
            }
        }
    }
}
