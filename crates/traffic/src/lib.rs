//! Synthetic backbone traffic: the repository's substitute for the paper's
//! Abilene and GÉANT NetFlow trace archives.
//!
//! The paper's evaluation depends on *statistical properties* of backbone
//! traffic, not on any individual packet:
//!
//! * heavy-tailed flow sizes and address popularity, which make the
//!   attribute-space distribution severely skewed (Figure 2),
//! * approximate stationarity over diurnal timescales combined with
//!   substantial hour-over-hour churn, which justifies MIND's daily
//!   re-cutting strategy (Figure 3),
//! * massive reducibility under windowed aggregation and small-flow
//!   filtering (Figure 1),
//! * the asymmetric packet-sampling rates of the two backbones (1/100 on
//!   Abilene vs 1/1000 on GÉANT), which unbalance per-node insert volume
//!   (Figure 12),
//! * rare, large anomalies — alpha flows, DoS attacks, port scans — hiding
//!   in the mass of normal traffic (Figure 17).
//!
//! [`generator::TrafficGenerator`] reproduces each property with tunable
//! parameters, deterministically from a seed; [`aggregate`] implements the
//! paper's 30-second aggregation windows and per-index filtering;
//! [`anomaly`] injects attacks with exact ground truth so recall is
//! measurable; [`schemas`] defines the paper's three evaluation indices.

#![warn(missing_docs)]

pub mod aggregate;
pub mod anomaly;
pub mod flow;
pub mod generator;
pub mod schemas;

pub use aggregate::{aggregate_window, AggRecord};
pub use anomaly::{Anomaly, AnomalyKind};
pub use flow::RawFlow;
pub use generator::{TrafficConfig, TrafficGenerator};
pub use schemas::{index1_schema, index2_schema, index3_schema};
