//! The synthetic backbone flow generator.
//!
//! Generation is *stateless and deterministic*: the flows of any
//! `(day, window, router)` cell are a pure function of the seed, so
//! experiments can stream days of traffic without holding it in memory,
//! and any figure can be regenerated bit-for-bit.

use crate::flow::RawFlow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Statistical parameters of the synthetic backbone.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Master seed; every cell derives its own stream from it.
    pub seed: u64,
    /// Number of backbone routers exporting flows.
    pub routers: usize,
    /// Number of distinct /16 prefixes in the address population.
    pub prefixes: usize,
    /// Mean sampled flows per second per router at the diurnal peak.
    pub flows_per_sec: f64,
    /// Diurnal modulation depth in `[0, 1)`: traffic at the nightly trough
    /// is `(1 − amplitude)` of the peak.
    pub diurnal_amplitude: f64,
    /// Fraction of the prefix popularity ranking that rotates every hour —
    /// the churn that makes *hourly* histograms mismatch (Figure 3) while
    /// daily ones stay stable.
    pub hourly_drift: f64,
    /// Small day-over-day parameter drift (the ≤ 20 % daily mismatch).
    pub daily_drift: f64,
    /// Pareto shape for flow sizes (heavier tail when closer to 1).
    pub pareto_alpha: f64,
    /// Pareto scale (minimum sampled flow size in bytes).
    pub pareto_xm: f64,
    /// Per-router sampling-rate multiplier on flow volume. The paper's
    /// Abilene routers sampled 1/100, GÉANT's 1/1000, so Abilene nodes
    /// injected ~10× the tuples. Empty = all 1.0.
    pub router_volume: Vec<f64>,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0,
            routers: 11,
            prefixes: 512,
            flows_per_sec: 40.0,
            diurnal_amplitude: 0.6,
            hourly_drift: 0.15,
            daily_drift: 0.02,
            pareto_alpha: 1.2,
            pareto_xm: 400.0,
            router_volume: Vec::new(),
        }
    }
}

impl TrafficConfig {
    /// A 34-router Abilene + GÉANT configuration: routers `0..11` are
    /// Abilene (1/100 sampling → 10× volume), `11..34` are GÉANT.
    pub fn abilene_geant(seed: u64) -> Self {
        let mut v = vec![1.0; 34];
        for x in v.iter_mut().take(11) {
            *x = 10.0;
        }
        TrafficConfig {
            seed,
            routers: 34,
            flows_per_sec: 4.0,
            router_volume: v,
            ..Default::default()
        }
    }
}

/// Deterministic synthetic flow source.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    cfg: TrafficConfig,
    /// Zipf cumulative weights over prefix ranks (popularity ∝ 1/rank).
    zipf_cum: Vec<f64>,
}

/// Well-known destination ports, Zipf-weighted: web dominates, with mail,
/// DNS, databases and P2P in the tail.
const PORTS: [u16; 10] = [80, 443, 25, 53, 110, 3306, 22, 21, 6881, 4662];

impl TrafficGenerator {
    /// Builds a generator for the given configuration.
    pub fn new(cfg: TrafficConfig) -> Self {
        assert!(cfg.routers >= 1 && cfg.prefixes >= 2);
        assert!(cfg.pareto_alpha > 0.0 && cfg.pareto_xm >= 1.0);
        let mut zipf_cum = Vec::with_capacity(cfg.prefixes);
        let mut acc = 0.0;
        for r in 0..cfg.prefixes {
            acc += 1.0 / (r as f64 + 1.0);
            zipf_cum.push(acc);
        }
        TrafficGenerator { cfg, zipf_cum }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrafficConfig {
        &self.cfg
    }

    /// Diurnal rate multiplier at second-of-day `s` (peak at 14:00 local).
    fn diurnal(&self, s: u64) -> f64 {
        let phase = (s % 86_400) as f64 / 86_400.0 * std::f64::consts::TAU;
        // Peak in the afternoon: cos is shifted so the max lands at 14 h.
        let peak_phase = 14.0 / 24.0 * std::f64::consts::TAU;
        1.0 - self.cfg.diurnal_amplitude * 0.5 * (1.0 - (phase - peak_phase).cos())
    }

    /// Samples a prefix *rank* from the Zipf popularity law.
    fn sample_rank(&self, rng: &mut StdRng) -> usize {
        let total = self.zipf_cum.last().copied().unwrap_or(1.0);
        let u: f64 = rng.random_range(0.0..total);
        self.zipf_cum
            .partition_point(|&c| c < u)
            .min(self.cfg.prefixes - 1)
    }

    /// Maps a popularity rank to a concrete prefix for `(day, hour)`.
    ///
    /// The layout models real address allocation: popular destinations
    /// cluster in a handful of address *blocks* (big networks own
    /// contiguous ranges), so the traffic distribution is skewed at every
    /// histogram granularity. Within a block, the daily drift slides the
    /// popular slots a little per day and the hourly drift slides them
    /// much faster — so fine-grained histograms churn hour over hour
    /// while coarse (block-level) mass stays put, reproducing the
    /// Figure 3 contrast.
    fn rank_to_prefix(&self, rank: usize, day: u64, hour: u64) -> u32 {
        let id = rank as u64 % self.cfg.prefixes as u64;
        // 8 blocks of 64 popularity slots laid out across the /16 space;
        // consecutive ranks share a block, so the Zipf head concentrates
        // in block 0.
        let block = (id / 64) % 8;
        // Hour-over-hour churn: an hour-keyed affine permutation of the
        // slots within the block (yesterday's hot prefix is cold an hour
        // later). Day-over-day drift: a small rotation on top.
        let slot = if self.cfg.hourly_drift > 0.0 {
            let a = 2 * ((hour * 7) % 32) + 1; // odd -> bijection mod 64
            let b = hour.wrapping_mul(2_654_435_761) % 64;
            (id * a + b) % 64
        } else {
            id % 64
        };
        let daily = (day as f64 * self.cfg.daily_drift * 64.0) as u64;
        let slot = (slot + daily) % 64;
        let prefix16 = block * 8192 + slot * 128 + (id % 128);
        (prefix16 as u32) << 16
    }

    /// Generates the sampled flows router `router` exports during the
    /// `window_len`-second window starting at `window_start` (seconds since
    /// the epoch of `day`).
    pub fn window_flows(
        &self,
        day: u64,
        window_start: u64,
        window_len: u64,
        router: u16,
    ) -> Vec<RawFlow> {
        let mut rng = StdRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(day.wrapping_mul(0x1000_0000))
                .wrapping_add(window_start.wrapping_mul(131))
                .wrapping_add(router as u64),
        );
        let volume = self
            .cfg
            .router_volume
            .get(router as usize)
            .copied()
            .unwrap_or(1.0);
        let hour = window_start / 3600;
        let mean = self.cfg.flows_per_sec * window_len as f64 * self.diurnal(window_start) * volume;
        // Poisson-ish count via normal approximation, clamped.
        let jit: f64 = rng.random_range(-1.0..1.0);
        let n = (mean + jit * mean.sqrt()).max(0.0) as usize;
        let mut flows = Vec::with_capacity(n);
        for _ in 0..n {
            let dst_rank = self.sample_rank(&mut rng);
            let src_rank = self.sample_rank(&mut rng);
            let dst_prefix = self.rank_to_prefix(dst_rank, day, hour);
            // Router locality: each router sees a rotated source population.
            let src_prefix = self.rank_to_prefix(src_rank + router as usize * 7, day, hour);
            let u: f64 = rng.random_range(f64::EPSILON..1.0);
            let bytes = (self.cfg.pareto_xm / u.powf(1.0 / self.cfg.pareto_alpha)) as u64;
            let port_idx = self.sample_port(&mut rng);
            flows.push(RawFlow {
                src_ip: src_prefix | rng.random_range(0..65_536u32),
                dst_ip: dst_prefix | rng.random_range(0..256u32), // servers cluster
                src_port: rng.random_range(1024..65_535u16),
                dst_port: PORTS[port_idx],
                bytes: bytes.min(1 << 32),
                packets: (bytes / 800).max(1) as u32,
                start: window_start + rng.random_range(0..window_len),
                router,
            });
        }
        flows
    }

    fn sample_port(&self, rng: &mut StdRng) -> usize {
        // Zipf over the port list.
        let total: f64 = (1..=PORTS.len()).map(|r| 1.0 / r as f64).sum();
        let mut u: f64 = rng.random_range(0.0..total);
        for (i, _) in PORTS.iter().enumerate() {
            u -= 1.0 / (i + 1) as f64;
            if u <= 0.0 {
                return i;
            }
        }
        PORTS.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn generator() -> TrafficGenerator {
        TrafficGenerator::new(TrafficConfig::default())
    }

    #[test]
    fn deterministic_per_cell() {
        let g = generator();
        let a = g.window_flows(0, 3600, 30, 3);
        let b = g.window_flows(0, 3600, 30, 3);
        assert_eq!(a, b);
        let c = g.window_flows(0, 3630, 30, 3);
        assert_ne!(a, c, "different windows must differ");
    }

    #[test]
    fn diurnal_modulation_peaks_in_afternoon() {
        let g = generator();
        let peak = g.diurnal(14 * 3600);
        let trough = g.diurnal(2 * 3600);
        assert!(peak > trough, "peak {peak} vs trough {trough}");
        assert!(peak > 0.95 && trough >= 1.0 - g.cfg.diurnal_amplitude - 0.05);
    }

    #[test]
    fn flow_sizes_heavy_tailed() {
        let g = generator();
        let mut sizes: Vec<u64> = (0..200)
            .flat_map(|w| g.window_flows(0, w * 30, 30, 0))
            .map(|f| f.bytes)
            .collect();
        sizes.sort_unstable();
        let n = sizes.len();
        assert!(n > 1000);
        let median = sizes[n / 2];
        let p999 = sizes[n * 999 / 1000];
        assert!(
            p999 > median * 50,
            "tail too light: median {median}, p99.9 {p999}"
        );
    }

    #[test]
    fn prefix_popularity_skewed() {
        let g = generator();
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for w in 0..100 {
            for f in g.window_flows(0, w * 30, 30, 0) {
                *counts.entry(f.dst_prefix()).or_insert(0) += 1;
            }
        }
        let total: u64 = counts.values().sum();
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = v.iter().take(10).sum();
        assert!(
            top10 as f64 / total as f64 > 0.25,
            "top-10 prefixes should dominate: {top10}/{total}"
        );
    }

    #[test]
    fn router_volume_scales_flow_count() {
        let g = TrafficGenerator::new(TrafficConfig::abilene_geant(1));
        let abilene: usize = (0..20)
            .map(|w| g.window_flows(0, w * 30, 30, 0).len())
            .sum();
        let geant: usize = (0..20)
            .map(|w| g.window_flows(0, w * 30, 30, 20).len())
            .sum();
        assert!(
            abilene > geant * 5,
            "Abilene (1/100 sampling) must inject far more: {abilene} vs {geant}"
        );
    }

    #[test]
    fn hourly_popularity_churns_daily_stays() {
        let g = generator();
        let top_prefix = |day: u64, hour: u64| -> u32 {
            let mut counts: HashMap<u32, u64> = HashMap::new();
            for w in 0..40 {
                for f in g.window_flows(day, hour * 3600 + w * 30, 30, 0) {
                    *counts.entry(f.dst_prefix()).or_insert(0) += 1;
                }
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        // Same hour on consecutive days: stable-ish popular prefix set.
        // Different hours within a day: rotated.
        let h2 = top_prefix(0, 2);
        let h14 = top_prefix(0, 14);
        assert_ne!(h2, h14, "hourly drift should rotate popularity");
    }
}
