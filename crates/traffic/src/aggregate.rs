//! Windowed aggregation and pre-filtering of flow records (Section 2.2).
//!
//! Network monitors do not insert raw flows into MIND; they aggregate them
//! over a time window (30 s in every experiment) keyed by
//! `(dst_prefix, src_prefix)` and filter out small, uninteresting
//! aggregates. The paper measures almost two orders of magnitude reduction
//! from this step (Figure 1) — the property that makes distributed
//! indexing affordable at backbone scale.

use crate::flow::RawFlow;
use std::collections::{HashMap, HashSet};

/// One aggregated flow record: the unit MIND actually indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggRecord {
    /// Destination /16 prefix.
    pub dst_prefix: u32,
    /// Source /16 prefix.
    pub src_prefix: u32,
    /// Window start time (seconds since trace epoch).
    pub window_start: u64,
    /// Total bytes in the aggregate (the paper's `octets`).
    pub octets: u64,
    /// Distinct connections `(src_ip, src_port, dst_ip, dst_port)` — the paper's
    /// `fanout`, which blows up under scans and DoS floods.
    pub fanout: u64,
    /// Average bytes per distinct connection (the paper's `flow_size`,
    /// used by Index-3 to spot tunneling over well-known ports).
    pub avg_flow_size: u64,
    /// Most common destination port in the aggregate.
    pub dst_port: u16,
    /// The observing router.
    pub router: u16,
}

/// Aggregates one window of flows from one router into per-prefix-pair
/// records. Flows outside `[window_start, window_start + window_len)` are
/// ignored (robustness against sloppy exporters).
pub fn aggregate_window(flows: &[RawFlow], window_start: u64, window_len: u64) -> Vec<AggRecord> {
    struct State {
        octets: u64,
        conns: HashSet<(u32, u16, u32, u16)>,
        ports: HashMap<u16, u32>,
        router: u16,
    }
    let mut map: HashMap<(u32, u32), State> = HashMap::new();
    for f in flows {
        if f.start < window_start || f.start >= window_start + window_len {
            continue;
        }
        let key = (f.dst_prefix(), f.src_prefix());
        let st = map.entry(key).or_insert_with(|| State {
            octets: 0,
            conns: HashSet::new(),
            ports: HashMap::new(),
            router: f.router,
        });
        st.octets += f.bytes;
        st.conns
            .insert((f.src_ip, f.src_port, f.dst_ip, f.dst_port));
        *st.ports.entry(f.dst_port).or_insert(0) += 1;
    }
    let mut out: Vec<AggRecord> = map
        .into_iter()
        .map(|((dst_prefix, src_prefix), st)| {
            let fanout = st.conns.len() as u64;
            let dst_port = st
                .ports
                .iter()
                .max_by_key(|&(p, c)| (*c, u32::from(*p)))
                .map(|(&p, _)| p)
                .unwrap_or(0);
            AggRecord {
                dst_prefix,
                src_prefix,
                window_start,
                octets: st.octets,
                fanout,
                avg_flow_size: st.octets / fanout.max(1),
                dst_port,
                router: st.router,
            }
        })
        .collect();
    // Deterministic output order.
    out.sort_by_key(|r| (r.dst_prefix, r.src_prefix));
    out
}

/// Counts raw flows vs aggregates vs filtered aggregates for one window —
/// the three series of Figure 1.
pub fn reduction_counts(
    flows: &[RawFlow],
    window_start: u64,
    window_len: u64,
    octet_threshold: u64,
) -> (usize, usize, usize) {
    let aggs = aggregate_window(flows, window_start, window_len);
    let filtered = aggs.iter().filter(|a| a.octets >= octet_threshold).count();
    (flows.len(), aggs.len(), filtered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(src: u32, dst: u32, port: u16, bytes: u64, start: u64) -> RawFlow {
        RawFlow {
            src_ip: src,
            dst_ip: dst,
            src_port: 40_000, // fixed so repeat flows are the same connection
            dst_port: port,
            bytes,
            packets: 1,
            start,
            router: 3,
        }
    }

    #[test]
    fn groups_by_prefix_pair() {
        let flows = vec![
            flow(0x0A00_0001, 0xC0A8_0001, 80, 100, 0),
            flow(0x0A00_0002, 0xC0A8_0002, 80, 200, 5),
            flow(0x0B00_0001, 0xC0A8_0001, 80, 400, 9),
        ];
        let aggs = aggregate_window(&flows, 0, 30);
        assert_eq!(aggs.len(), 2);
        let a = aggs.iter().find(|a| a.src_prefix == 0x0A00_0000).unwrap();
        assert_eq!(a.octets, 300);
        assert_eq!(a.fanout, 2);
        assert_eq!(a.avg_flow_size, 150);
    }

    #[test]
    fn fanout_counts_distinct_connections() {
        // Same connection twice = one; new port = new connection.
        let flows = vec![
            flow(1, 0xC0A8_0001, 80, 10, 0),
            flow(1, 0xC0A8_0001, 80, 10, 1),
            flow(1, 0xC0A8_0001, 443, 10, 2),
            flow(1, 0xC0A8_0009, 80, 10, 3),
        ];
        let aggs = aggregate_window(&flows, 0, 30);
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].fanout, 3);
    }

    #[test]
    fn flows_outside_window_ignored() {
        let flows = vec![flow(1, 2, 80, 10, 29), flow(1, 2, 80, 10, 30)];
        let aggs = aggregate_window(&flows, 0, 30);
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].octets, 10);
    }

    #[test]
    fn dominant_port_reported() {
        let flows = vec![
            flow(1, 2, 53, 10, 0),
            flow(3, 2, 80, 10, 0),
            flow(4, 2, 80, 10, 0),
        ];
        let aggs = aggregate_window(&flows, 0, 30);
        assert_eq!(aggs[0].dst_port, 80);
    }

    #[test]
    fn reduction_counts_monotone() {
        let mut flows = Vec::new();
        for i in 0..100u32 {
            flows.push(flow(i, 0xC0A8_0000 | (i % 4), 80, (i as u64 + 1) * 10, 0));
        }
        let (raw, agg, filt) = reduction_counts(&flows, 0, 30, 400);
        assert_eq!(raw, 100);
        assert!(agg <= raw);
        assert!(filt <= agg);
        assert!(filt > 0);
    }

    #[test]
    fn empty_input() {
        assert!(aggregate_window(&[], 0, 30).is_empty());
    }
}
