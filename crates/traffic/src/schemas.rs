//! The paper's three evaluation indices (Section 4.1).
//!
//! Each index is built on the first three attributes of an aggregated flow
//! record; the remaining attributes are carried along and returned by
//! queries but not indexed. Attribute upper bounds follow the paper: 5024
//! for fanout, 2 MB for octets, 128 KB for flow size — chosen so fewer
//! than 0.1 % of tuples exceed them (those are clamped into the largest
//! range on insert).

use crate::aggregate::AggRecord;
use mind_types::{AttrDef, AttrKind, IndexSchema, Record};

/// Fanout cap for Index-1 histograms/cuts (the paper's 5024).
pub const FANOUT_BOUND: u64 = 5024;
/// Octets cap for Index-2 (the paper's 2 MB).
pub const OCTETS_BOUND: u64 = 2 << 20;
/// Flow-size cap for Index-3 (the paper's 128 KB).
pub const FLOW_SIZE_BOUND: u64 = 128 << 10;

/// Insert threshold for Index-1: aggregates with fanout below 16 are not
/// interesting for scan/DoS detection.
pub const FANOUT_THRESHOLD: u64 = 16;
/// Insert threshold for Index-2: 80 KB (conservative given 1/100 packet
/// sampling understates true sizes).
pub const OCTETS_THRESHOLD: u64 = 80 << 10;
/// Insert threshold for Index-3: 1.5 KB average flow size.
pub const FLOW_SIZE_THRESHOLD: u64 = 1536;

/// Index-1: `(dst_prefix, timestamp, fanout | src_prefix, node)` — port
/// scan and DoS detection.
pub fn index1_schema(ts_bound: u64) -> IndexSchema {
    IndexSchema::new(
        "index-1",
        vec![
            AttrDef::new("dst_prefix", AttrKind::IpPrefix, 0, u32::MAX as u64),
            AttrDef::new("timestamp", AttrKind::Timestamp, 0, ts_bound),
            AttrDef::new("fanout", AttrKind::Count, 0, FANOUT_BOUND),
            AttrDef::new("src_prefix", AttrKind::IpPrefix, 0, u32::MAX as u64),
            AttrDef::new("node", AttrKind::Generic, 0, 1024),
        ],
        3,
    )
}

/// Index-2: `(dst_prefix, timestamp, octets | src_prefix, node)` — alpha
/// flow detection.
pub fn index2_schema(ts_bound: u64) -> IndexSchema {
    IndexSchema::new(
        "index-2",
        vec![
            AttrDef::new("dst_prefix", AttrKind::IpPrefix, 0, u32::MAX as u64),
            AttrDef::new("timestamp", AttrKind::Timestamp, 0, ts_bound),
            AttrDef::new("octets", AttrKind::Octets, 0, OCTETS_BOUND),
            AttrDef::new("src_prefix", AttrKind::IpPrefix, 0, u32::MAX as u64),
            AttrDef::new("node", AttrKind::Generic, 0, 1024),
        ],
        3,
    )
}

/// Index-3: `(dst_prefix, timestamp, flow_size | src_prefix, dst_port,
/// node)` — detecting tunneling and port-abusing applications.
pub fn index3_schema(ts_bound: u64) -> IndexSchema {
    IndexSchema::new(
        "index-3",
        vec![
            AttrDef::new("dst_prefix", AttrKind::IpPrefix, 0, u32::MAX as u64),
            AttrDef::new("timestamp", AttrKind::Timestamp, 0, ts_bound),
            AttrDef::new("flow_size", AttrKind::Octets, 0, FLOW_SIZE_BOUND),
            AttrDef::new("src_prefix", AttrKind::IpPrefix, 0, u32::MAX as u64),
            AttrDef::new("dst_port", AttrKind::Port, 0, u16::MAX as u64),
            AttrDef::new("node", AttrKind::Generic, 0, 1024),
        ],
        3,
    )
}

/// Converts an aggregate into an Index-1 record, applying the fanout
/// filter. `None` means "too small to index".
pub fn index1_record(a: &AggRecord) -> Option<Record> {
    (a.fanout >= FANOUT_THRESHOLD).then(|| {
        Record::new(vec![
            a.dst_prefix as u64,
            a.window_start,
            a.fanout,
            a.src_prefix as u64,
            a.router as u64,
        ])
    })
}

/// Converts an aggregate into an Index-2 record, applying the octet filter.
pub fn index2_record(a: &AggRecord) -> Option<Record> {
    (a.octets >= OCTETS_THRESHOLD).then(|| {
        Record::new(vec![
            a.dst_prefix as u64,
            a.window_start,
            a.octets,
            a.src_prefix as u64,
            a.router as u64,
        ])
    })
}

/// Converts an aggregate into an Index-3 record, applying the flow-size
/// filter.
pub fn index3_record(a: &AggRecord) -> Option<Record> {
    (a.avg_flow_size >= FLOW_SIZE_THRESHOLD).then(|| {
        Record::new(vec![
            a.dst_prefix as u64,
            a.window_start,
            a.avg_flow_size,
            a.src_prefix as u64,
            a.dst_port as u64,
            a.router as u64,
        ])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(octets: u64, fanout: u64) -> AggRecord {
        AggRecord {
            dst_prefix: 0xC0A8_0000,
            src_prefix: 0x0A00_0000,
            window_start: 120,
            octets,
            fanout,
            avg_flow_size: octets / fanout.max(1),
            dst_port: 80,
            router: 5,
        }
    }

    #[test]
    fn schemas_are_three_dimensional() {
        for s in [
            index1_schema(86_400),
            index2_schema(86_400),
            index3_schema(86_400),
        ] {
            assert_eq!(s.indexed_dims, 3);
            assert_eq!(s.time_dim(), Some(1));
        }
        assert_eq!(index3_schema(1).arity(), 6);
    }

    #[test]
    fn filters_apply() {
        assert!(index1_record(&agg(1000, 15)).is_none());
        assert!(index1_record(&agg(1000, 16)).is_some());
        assert!(index2_record(&agg((80 << 10) - 1, 20)).is_none());
        assert!(index2_record(&agg(80 << 10, 20)).is_some());
        assert!(index3_record(&agg(1535, 1)).is_none());
        assert!(index3_record(&agg(200_000, 2)).is_some());
    }

    #[test]
    fn record_layout_matches_schema() {
        let r = index1_record(&agg(1000, 99)).unwrap();
        let s = index1_schema(86_400);
        let r = r.conform(&s).unwrap();
        assert_eq!(r.value(0), 0xC0A8_0000);
        assert_eq!(r.value(1), 120);
        assert_eq!(r.value(2), 99);
        assert_eq!(r.value(3), 0x0A00_0000);
        assert_eq!(r.value(4), 5);
    }

    #[test]
    fn conform_clamps_oversized_fanout() {
        let r = index1_record(&agg(10, 50_000)).unwrap();
        let r = r.conform(&index1_schema(86_400)).unwrap();
        assert_eq!(
            r.value(2),
            FANOUT_BOUND,
            "out-of-bound fanout clamps to the largest range"
        );
    }
}
