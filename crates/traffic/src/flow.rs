//! Raw (sampled) flow records, as a NetFlow export would produce.

/// One sampled flow record observed at a backbone router.
///
/// Field layout follows NetFlow v5 semantics restricted to what the
/// paper's aggregation pipeline consumes. Addresses are IPv4 as `u32`;
/// prefixes are derived by masking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawFlow {
    /// Source address.
    pub src_ip: u32,
    /// Destination address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Flow bytes **after** packet sampling was inverted by the exporter
    /// (i.e. the reported size; the paper notes true sizes may be ~100×
    /// the sampled observation on Abilene).
    pub bytes: u64,
    /// Packets in the flow.
    pub packets: u32,
    /// Flow start time in seconds since the trace epoch.
    pub start: u64,
    /// Index of the observing router (the paper's `node` attribute).
    pub router: u16,
}

/// Mask width used for "interesting sets of nodes" — the paper's examples
/// use prefixes like 192.168.32/20; we aggregate on /16 boundaries, which
/// keeps the prefix space at 65 536 values.
pub const PREFIX_BITS: u32 = 16;

/// The network prefix of an address (upper [`PREFIX_BITS`] bits kept).
#[inline]
pub fn prefix_of(ip: u32) -> u32 {
    ip & (u32::MAX << (32 - PREFIX_BITS))
}

impl RawFlow {
    /// Destination prefix of the flow.
    pub fn dst_prefix(&self) -> u32 {
        prefix_of(self.dst_ip)
    }

    /// Source prefix of the flow.
    pub fn src_prefix(&self) -> u32 {
        prefix_of(self.src_ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_masks_host_bits() {
        assert_eq!(prefix_of(0xC0A8_2001), 0xC0A8_0000);
        assert_eq!(prefix_of(0x0000_FFFF), 0);
        assert_eq!(prefix_of(0xFFFF_FFFF), 0xFFFF_0000);
    }

    #[test]
    fn flow_prefixes() {
        let f = RawFlow {
            src_ip: 0x0A01_0203,
            dst_ip: 0xC0A8_2001,
            src_port: 1234,
            dst_port: 80,
            bytes: 1000,
            packets: 3,
            start: 42,
            router: 7,
        };
        assert_eq!(f.src_prefix(), 0x0A01_0000);
        assert_eq!(f.dst_prefix(), 0xC0A8_0000);
    }
}
