//! Process-per-node integration tests: real `mind-node` binaries on
//! localhost, driven over the control protocol.
//!
//! * kill -9 one process mid-run, restart it, and assert the PR 1
//!   stale-membership invariant at process level: the revived node comes
//!   back **fresh** (member again, zero rows, catalog re-learned via
//!   anti-entropy) and the cluster keeps serving,
//! * a loadgen smoke: reported percentiles are monotone
//!   (p50 ≤ p99 ≤ p999), ops counts conserve, and the whole cluster
//!   shuts down cleanly over the control protocol (no signals).

use mind_core::Replication;
use mind_runtime::control::{ControlClient, ControlRequest, ControlResponse};
use mind_runtime::loadgen::{self, LoadOptions};
use mind_runtime::ClusterSpec;
use mind_types::{NodeId, Record};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const NODE_BIN: &str = env!("CARGO_BIN_EXE_mind-node");

/// Kills any still-running children on drop so a failed assert doesn't
/// leak processes.
struct Fleet {
    children: Vec<Option<Child>>,
    spec_path: PathBuf,
    spec: ClusterSpec,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for c in self.children.iter_mut().flatten() {
            let _ = c.kill();
            let _ = c.wait();
        }
        let _ = std::fs::remove_file(&self.spec_path);
    }
}

fn spawn_node(spec_path: &PathBuf, id: u32, extra: &[&str]) -> Child {
    let mut cmd = Command::new(NODE_BIN);
    cmd.arg("--id")
        .arg(id.to_string())
        .arg("--cluster")
        .arg(spec_path)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for a in extra {
        cmd.arg(a);
    }
    cmd.spawn().expect("spawn mind-node")
}

fn spawn_fleet(n: usize, tag: &str, extra: &[&str]) -> Fleet {
    let spec = ClusterSpec::localhost(n).expect("alloc ports");
    let spec_path =
        std::env::temp_dir().join(format!("mind-proc-{}-{}.cluster", std::process::id(), tag));
    std::fs::write(&spec_path, spec.render()).expect("write spec");
    let children = (0..n)
        .map(|k| Some(spawn_node(&spec_path, k as u32, extra)))
        .collect();
    Fleet {
        children,
        spec_path,
        spec,
    }
}

fn client(fleet: &Fleet, id: u32) -> ControlClient {
    ControlClient::connect_ready(
        fleet.spec.node(NodeId(id)).unwrap().control_addr,
        Duration::from_secs(20),
    )
    .expect("node never became ready")
}

fn primary_rows(c: &mut ControlClient, index: &str) -> u64 {
    match c
        .call(&ControlRequest::PrimaryRows {
            index: index.into(),
        })
        .expect("rows call")
    {
        ControlResponse::Count(k) => k,
        r => panic!("unexpected rows response {r:?}"),
    }
}

fn total_rows(clients: &mut [ControlClient], index: &str) -> u64 {
    clients.iter_mut().map(|c| primary_rows(c, index)).sum()
}

fn has_index(c: &mut ControlClient, index: &str) -> bool {
    matches!(
        c.call(&ControlRequest::Catalog),
        Ok(ControlResponse::Catalog(tags)) if tags.iter().any(|t| t == index)
    )
}

/// Waits up to `d` for the child to exit successfully.
fn wait_timeout(child: &mut Child, d: Duration) -> bool {
    let deadline = Instant::now() + d;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return status.success(),
            Ok(None) => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return false;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => return false,
        }
    }
}

/// Shuts down over the control protocol and asserts every process exits 0
/// within the grace period — the SIGTERM-free shutdown proof.
fn shutdown_and_reap(fleet: &mut Fleet) {
    loadgen::shutdown_cluster(&fleet.spec);
    for (k, slot) in fleet.children.iter_mut().enumerate() {
        if let Some(mut child) = slot.take() {
            assert!(
                wait_timeout(&mut child, Duration::from_secs(10)),
                "node {k} did not exit cleanly"
            );
        }
    }
}

#[test]
fn killed_process_rejoins_fresh_and_cluster_keeps_serving() {
    const N: usize = 4;
    const INDEX: &str = "proc-flows";
    // Slow heartbeats: failure detection must NOT fire during the brief
    // kill window, so the row accounting stays exact (no takeover
    // promotes anything behind our back). Fast anti-entropy: the
    // restarted process re-learns the index catalog in ~1 s.
    // Replication::None keeps the ledger exact too: kill-lost rows stay
    // lost, so the expected totals have a single possible value.
    let flags: &[&str] = &[
        "--hb-ms",
        "30000",
        "--anti-entropy-ms",
        "750",
        "--retry-ms",
        "300",
    ];
    let mut fleet = spawn_fleet(N, "restart", flags);
    let mut clients: Vec<ControlClient> = (0..N as u32).map(|k| client(&fleet, k)).collect();

    // Create the index and wait for the flood to land on every node.
    let resp = clients[0]
        .call(&ControlRequest::CreateIndex {
            schema: loadgen::load_schema(INDEX),
            depth: 6,
            replication: Replication::None,
        })
        .expect("create_index");
    assert!(matches!(resp, ControlResponse::Ok), "create: {resp:?}");
    let deadline = Instant::now() + Duration::from_secs(20);
    while !clients.iter_mut().all(|c| has_index(c, INDEX)) {
        assert!(Instant::now() < deadline, "index flood never settled");
        std::thread::sleep(Duration::from_millis(50));
    }

    // Burst 1: 800 rows round-robin, scattered over the full cube in
    // every dimension so each node's zone holds data; wait until fully
    // stored.
    let rows1: Vec<Record> = (0..800u64)
        .map(|i| {
            Record::new(vec![
                (i * 2_654_435_761) % (1 << 20),
                (i * 12_289) % 86_400,
                (i * 793_517) % (1 << 20),
            ])
        })
        .collect();
    for (i, r) in rows1.iter().enumerate() {
        let resp = clients[i % N]
            .call(&ControlRequest::Insert {
                index: INDEX.into(),
                rows: vec![r.clone()],
            })
            .expect("insert");
        assert!(matches!(resp, ControlResponse::Ok), "insert: {resp:?}");
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while total_rows(&mut clients, INDEX) != 800 {
        assert!(Instant::now() < deadline, "burst 1 never fully stored");
        std::thread::sleep(Duration::from_millis(50));
    }
    let victim_rows = primary_rows(&mut clients[3], INDEX);
    assert!(victim_rows > 0, "victim holds no data; kill proves nothing");

    // SIGKILL node 3 — no drain, no goodbye.
    {
        let mut child = fleet.children[3].take().expect("child 3");
        child.kill().expect("kill -9");
        let _ = child.wait();
    }

    // Restart the same id against the same spec file; the drop guard now
    // owns the replacement too.
    fleet.children[3] = Some(spawn_node(&fleet.spec_path, 3, flags));

    // The revived node must come back a member (static topology) but
    // FRESH: zero rows, and the index catalog re-learned from a peer via
    // anti-entropy rather than remembered.
    let mut c3 = client(&fleet, 3);
    match c3.call(&ControlRequest::IsMember).expect("member") {
        ControlResponse::Member(m) => assert!(m, "revived node lost membership"),
        r => panic!("unexpected member response {r:?}"),
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while !has_index(&mut c3, INDEX) {
        assert!(
            Instant::now() < deadline,
            "anti-entropy never healed the revived node's catalog"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    assert_eq!(
        primary_rows(&mut c3, INDEX),
        0,
        "revived node must rejoin fresh (kill wiped its store)"
    );

    // The cluster keeps serving: a second burst (routed through the
    // revived node too) conserves exactly — kill-lost rows stay lost,
    // new rows all land.
    clients[3] = c3;
    let rows2: Vec<Record> = (0..300u64)
        .map(|i| {
            let j = i + 10_000;
            Record::new(vec![
                (j * 1_073_741_827) % (1 << 20),
                (j * 12_289) % 86_400,
                (j * 793_517) % (1 << 20),
            ])
        })
        .collect();
    for (i, r) in rows2.iter().enumerate() {
        let resp = clients[(i + 3) % N]
            .call(&ControlRequest::Insert {
                index: INDEX.into(),
                rows: vec![r.clone()],
            })
            .expect("insert 2");
        assert!(matches!(resp, ControlResponse::Ok), "insert 2: {resp:?}");
    }
    let want = 800 - victim_rows + 300;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let got = total_rows(&mut clients, INDEX);
        if got == want {
            break;
        }
        if Instant::now() >= deadline {
            let per: Vec<u64> = clients.iter_mut().map(|c| primary_rows(c, INDEX)).collect();
            let drops: Vec<String> = clients
                .iter_mut()
                .map(|c| format!("{:?}", c.call(&ControlRequest::HostStats)))
                .collect();
            panic!(
                "conservation after restart: have {got}, want {want}; per-node {per:?}; stats {drops:#?}"
            );
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    // A full-range query issued AT the revived node completes with full
    // recall of everything still stored.
    let resp = clients[3]
        .call(&ControlRequest::Query {
            index: INDEX.into(),
            lo: vec![0, 0, 0],
            hi: vec![(1 << 20) - 1, 86_399, (1 << 20) - 1],
        })
        .expect("query");
    match resp {
        ControlResponse::Query(o) => {
            assert!(o.complete, "post-restart query incomplete");
            assert_eq!(o.records.len() as u64, want, "post-restart recall");
        }
        r => panic!("unexpected query response {r:?}"),
    }

    shutdown_and_reap(&mut fleet);
}

#[test]
fn loadgen_smoke_percentiles_monotone_and_ops_conserve() {
    const N: usize = 4;
    let mut fleet = spawn_fleet(N, "loadgen", &["--retry-ms", "300"]);

    let opts = LoadOptions {
        cluster: fleet.spec.clone(),
        index: "smoke-flows".into(),
        inserts: 12_000,
        batch: 48,
        queries: 8,
        replication: Replication::None,
        depth: 6,
        timeout: Duration::from_secs(60),
    };
    let report = loadgen::run(&opts).expect("loadgen run");

    assert_eq!(report.inserts_total, 12_000);
    assert!(report.conserved, "ops must conserve: {}", report.render());
    assert!(
        report.audit_clean,
        "fleet audit failed: {}",
        report.render()
    );
    assert!(report.insert_rate > 0.0);
    let (p50, p99, p999) = report.insert_hist.percentiles();
    assert!(p50 <= p99 && p99 <= p999, "insert percentiles not monotone");
    let (q50, q99, q999) = report.query_hist.percentiles();
    assert!(q50 <= q99 && q99 <= q999, "query percentiles not monotone");
    assert_eq!(report.queries_complete, report.queries_total);

    shutdown_and_reap(&mut fleet);
}
