//! The load-generator core: hammer a running `mind-node` cluster with
//! batched inserts and range queries over the control protocol, report
//! sustained ops/s plus p50/p99/p999 latency, and verify the final state
//! (ops conservation, fleet-wide audit cleanliness).
//!
//! Lives in the library (not the `mind-loadgen` binary) so the smoke
//! tests drive exactly the code path the binary ships.

use crate::config::ClusterSpec;
use crate::control::{ControlClient, ControlRequest, ControlResponse};
use crate::hist::LatencyHistogram;
use mind_audit::{Auditor, Snapshot};
use mind_core::Replication;
use mind_types::{AttrDef, AttrKind, IndexSchema, NodeId, Record};
use std::io;
use std::time::{Duration, Instant};

/// What to throw at the cluster.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// The cluster to target.
    pub cluster: ClusterSpec,
    /// Index tag to create and load.
    pub index: String,
    /// Total rows to insert.
    pub inserts: u64,
    /// Rows per control-protocol insert request (client-side batching).
    pub batch: usize,
    /// Range queries to issue after the burst.
    pub queries: u32,
    /// Replication policy for the index.
    pub replication: Replication,
    /// Even cut-tree depth for the index.
    pub depth: u8,
    /// Deadline for readiness, conservation, and the whole run.
    pub timeout: Duration,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            cluster: ClusterSpec { nodes: Vec::new() },
            index: "loadgen-flows".into(),
            inserts: 100_000,
            batch: 64,
            queries: 32,
            replication: Replication::None,
            depth: 8,
            timeout: Duration::from_secs(90),
        }
    }
}

/// What happened.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Rows acknowledged by the cluster.
    pub inserts_total: u64,
    /// Wall time of the insert phase.
    pub insert_wall: Duration,
    /// Sustained insert throughput, rows per second.
    pub insert_rate: f64,
    /// Per-request insert latency (µs); one sample per batched request.
    pub insert_hist: LatencyHistogram,
    /// Per-query latency (µs).
    pub query_hist: LatencyHistogram,
    /// Queries that completed (full recall within deadline).
    pub queries_complete: u32,
    /// Queries issued.
    pub queries_total: u32,
    /// Rows stored as primaries, summed over nodes, at the end.
    pub stored_total: u64,
    /// `stored_total == inserts_total` within the deadline.
    pub conserved: bool,
    /// The assembled fleet snapshot passed the settled invariant catalog.
    pub audit_clean: bool,
    /// Transport sends dropped, summed over nodes.
    pub sends_dropped: u64,
}

impl LoadReport {
    /// The `key=value` lines the binary prints (stable, grep-friendly).
    pub fn render(&self) -> String {
        let (ip50, ip99, ip999) = self.insert_hist.percentiles();
        let (qp50, qp99, qp999) = self.query_hist.percentiles();
        format!(
            "inserts_total={}\ninsert_wall_ms={}\ninsert_rate={:.0}\n\
             insert_p50_us={ip50}\ninsert_p99_us={ip99}\ninsert_p999_us={ip999}\n\
             queries_complete={}/{}\n\
             query_p50_us={qp50}\nquery_p99_us={qp99}\nquery_p999_us={qp999}\n\
             stored_total={}\nconserved={}\naudit_clean={}\nsends_dropped={}",
            self.inserts_total,
            self.insert_wall.as_millis(),
            self.insert_rate,
            self.queries_complete,
            self.queries_total,
            self.stored_total,
            self.conserved,
            self.audit_clean,
            self.sends_dropped,
        )
    }
}

/// The schema the load generator creates: three numeric attributes in
/// the shape of the paper's aggregated flow records.
pub fn load_schema(index: &str) -> IndexSchema {
    IndexSchema::new(
        index,
        vec![
            AttrDef::new("x", AttrKind::Generic, 0, (1 << 20) - 1),
            AttrDef::new("timestamp", AttrKind::Timestamp, 0, 86_399),
            AttrDef::new("size", AttrKind::Octets, 0, (1 << 20) - 1),
        ],
        3,
    )
}

/// Deterministic row `i` of the load (Weyl-style scatter over the cube).
fn row(i: u64) -> Record {
    Record::new(vec![
        (i.wrapping_mul(2_654_435_761)) % (1 << 20),
        (i.wrapping_mul(13)) % 86_400,
        (i.wrapping_mul(31)) % (1 << 20),
    ])
}

fn other_err(msg: impl Into<String>) -> io::Error {
    io::Error::other(msg.into())
}

/// Runs the load against an already-started cluster.
pub fn run(opts: &LoadOptions) -> io::Result<LoadReport> {
    let n = opts.cluster.len();
    if n == 0 {
        return Err(other_err("empty cluster spec"));
    }
    let deadline = Instant::now() + opts.timeout;

    // Wait for every node to come up.
    let mut clients: Vec<ControlClient> = Vec::with_capacity(n);
    for spec in &opts.cluster.nodes {
        clients.push(ControlClient::connect_ready(
            spec.control_addr,
            opts.timeout,
        )?);
    }

    // Create the index from node 0 and wait for the flood to land
    // everywhere.
    let schema = load_schema(&opts.index);
    match clients[0].call(&ControlRequest::CreateIndex {
        schema,
        depth: opts.depth,
        replication: opts.replication,
    })? {
        ControlResponse::Ok => {}
        r => return Err(other_err(format!("create_index failed: {r:?}"))),
    }
    'settle: loop {
        let mut all = true;
        for c in clients.iter_mut() {
            match c.call(&ControlRequest::Catalog)? {
                ControlResponse::Catalog(tags) => {
                    if !tags.iter().any(|t| *t == opts.index) {
                        all = false;
                        break;
                    }
                }
                r => return Err(other_err(format!("catalog failed: {r:?}"))),
            }
        }
        if all {
            break 'settle;
        }
        if Instant::now() >= deadline {
            return Err(other_err("index flood never settled"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Insert phase: one client thread per node, rows striped round-robin,
    // `opts.batch` rows per request, per-request latency into a
    // per-thread histogram (merged after).
    let insert_start = Instant::now();
    let mut insert_hist = LatencyHistogram::new();
    let mut inserts_total = 0u64;
    let results: Vec<io::Result<(LatencyHistogram, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|t| {
                let spec = opts.cluster.nodes[t];
                let index = opts.index.clone();
                let inserts = opts.inserts;
                let batch = opts.batch.max(1) as u64;
                scope.spawn(move || {
                    let mut client =
                        ControlClient::connect(spec.control_addr, Duration::from_secs(5))?;
                    let mut hist = LatencyHistogram::new();
                    let mut sent = 0u64;
                    // Thread t owns rows with i % n == t, in batches.
                    let mut i = t as u64;
                    while i < inserts {
                        let mut rows = Vec::with_capacity(batch as usize);
                        let mut j = i;
                        while j < inserts && (rows.len() as u64) < batch {
                            rows.push(row(j));
                            j += n as u64;
                        }
                        let count = rows.len() as u64;
                        let t0 = Instant::now();
                        match client.call(&ControlRequest::Insert {
                            index: index.clone(),
                            rows,
                        })? {
                            ControlResponse::Ok => {}
                            r => {
                                return Err(other_err(format!("insert failed: {r:?}")));
                            }
                        }
                        hist.record(t0.elapsed().as_micros() as u64);
                        sent += count;
                        i = j;
                    }
                    Ok((hist, sent))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(other_err("insert thread panicked")))
            })
            .collect()
    });
    for r in results {
        let (hist, sent) = r?;
        insert_hist.merge(&hist);
        inserts_total += sent;
    }
    let insert_wall = insert_start.elapsed();
    let insert_rate = inserts_total as f64 / insert_wall.as_secs_f64().max(1e-9);

    // Query phase: timestamp slices, round-robin over nodes.
    let mut query_hist = LatencyHistogram::new();
    let mut queries_complete = 0u32;
    for q in 0..opts.queries {
        let c = &mut clients[q as usize % n];
        let t0_ts = (q as u64 * 2_048) % 80_000;
        let t0 = Instant::now();
        match c.call(&ControlRequest::Query {
            index: opts.index.clone(),
            lo: vec![0, t0_ts, 0],
            hi: vec![(1 << 20) - 1, t0_ts + 4_096, (1 << 20) - 1],
        })? {
            ControlResponse::Query(outcome) => {
                query_hist.record(t0.elapsed().as_micros() as u64);
                if outcome.complete {
                    queries_complete += 1;
                }
            }
            r => return Err(other_err(format!("query failed: {r:?}"))),
        }
    }

    // Conservation: every acked row is stored exactly once (primaries).
    let mut stored_total;
    let conserved = loop {
        stored_total = 0;
        for c in clients.iter_mut() {
            match c.call(&ControlRequest::PrimaryRows {
                index: opts.index.clone(),
            })? {
                ControlResponse::Count(k) => stored_total += k,
                r => return Err(other_err(format!("rows failed: {r:?}"))),
            }
        }
        if stored_total == inserts_total {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(50));
    };

    // Fleet-wide audit: assemble per-node snapshots and run the settled
    // invariant catalog.
    let mut nodes = Vec::with_capacity(n);
    for (k, c) in clients.iter_mut().enumerate() {
        match c.call(&ControlRequest::Snapshot)? {
            ControlResponse::Snapshot(s) => {
                debug_assert_eq!(s.id, NodeId(k as u32));
                nodes.push(s);
            }
            r => return Err(other_err(format!("snapshot failed: {r:?}"))),
        }
    }
    let snapshot = Snapshot { now: 0, nodes };
    let audit_clean = Auditor::settled().audit(&snapshot).is_clean();

    // Transport drop counts, summed.
    let mut sends_dropped = 0u64;
    for c in clients.iter_mut() {
        match c.call(&ControlRequest::HostStats)? {
            ControlResponse::HostStats(s) => sends_dropped += s.sends_dropped,
            r => return Err(other_err(format!("stats failed: {r:?}"))),
        }
    }

    Ok(LoadReport {
        inserts_total,
        insert_wall,
        insert_rate,
        insert_hist,
        query_hist,
        queries_complete,
        queries_total: opts.queries,
        stored_total,
        conserved,
        audit_clean,
        sends_dropped,
    })
}

/// Sends a clean shutdown to every node in the spec (best effort).
pub fn shutdown_cluster(cluster: &ClusterSpec) {
    for spec in &cluster.nodes {
        if let Ok(mut c) = ControlClient::connect(spec.control_addr, Duration::from_secs(2)) {
            let _ = c.call(&ControlRequest::Shutdown);
        }
    }
}
