//! A log-bucketed latency histogram (HDR-style, fixed memory).
//!
//! Values (microseconds) land in buckets whose width grows with
//! magnitude: every power of two is split into `2^SUB_BITS` linear
//! sub-buckets, so relative error is bounded by `2^-SUB_BITS` (≈3% at
//! 5 sub-bits) at any scale while the whole histogram stays under 2k
//! counters. Percentile reads scan the cumulative counts, so reported
//! percentiles are monotone by construction: p50 ≤ p99 ≤ p999 always.

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per power of two, as a bit count.
const SUB_BITS: u32 = 5;
/// Bucket count: values up to 2^63 map below this.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// A fixed-size log-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value: identity below `2^SUB_BITS`, then
/// `SUB_BITS` mantissa bits per octave.
fn index_of(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = ((v >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as u32;
    (((exp - SUB_BITS + 1) << SUB_BITS) + sub) as usize
}

/// Upper bound (inclusive representative) of a bucket: the largest value
/// mapping to it, so reported percentiles never understate.
fn value_of(idx: usize) -> u64 {
    if idx < (1 << SUB_BITS) {
        return idx as u64;
    }
    let group = (idx >> SUB_BITS) as u32; // 1-based octave above the linear range
    let sub = (idx & ((1 << SUB_BITS) - 1)) as u64;
    let exp = group - 1 + SUB_BITS;
    let base = (1u64 << exp) + (sub << (exp - SUB_BITS));
    base + ((1u64 << (exp - SUB_BITS)) - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`: the smallest bucket upper
    /// bound covering at least `q` of the samples (0 on an empty
    /// histogram). Monotone in `q`, and never above [`Self::max`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return value_of(i).min(self.max);
            }
        }
        self.max
    }

    /// p50/p99/p999 in one call, the loadgen's reporting unit.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for exp in 5..40u32 {
            let v = (1u64 << exp) + (1 << (exp - 2));
            let mut probe = LatencyHistogram::new();
            probe.record(v);
            let got = probe.quantile(0.5);
            assert!(got >= v, "bucket upper bound must not understate {v}");
            assert!(
                (got - v) as f64 / v as f64 <= 1.0 / (1 << SUB_BITS) as f64 + 1e-9,
                "relative error too large at {v}: got {got}"
            );
            h.record(v);
        }
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        // A heavy-tailed-ish spread.
        for i in 1..=10_000u64 {
            h.record(i * i % 777_777);
        }
        let (p50, p99, p999) = h.percentiles();
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        assert!(p99 <= p999, "p99 {p99} > p999 {p999}");
        assert!(p999 <= h.max());
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut u = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * 37 % 50_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), u.count());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), u.quantile(q));
        }
    }
}
