//! The process-per-node MIND runtime.
//!
//! The simulator proves the protocol; this crate deploys it. One
//! `mind-node` process hosts one `MindNode` over `mind-net`'s `TcpHost`
//! (real sockets, real clocks) and serves a small length-framed control
//! protocol for client operations — the shape the paper ran on its
//! PlanetLab and Abilene deployments, one monitor process per site.
//!
//! Pieces:
//!
//! * [`config`] — the cluster spec file (`id node_addr control_addr` per
//!   line) every process reads at startup,
//! * [`control`] — the control protocol: serde-encoded request/response
//!   frames over the same length-framing the overlay uses,
//! * [`server`] — the per-process control server, bridging control
//!   connections onto the hosted node's driver thread,
//! * [`hist`] — the log-bucketed latency histogram `mind-loadgen`
//!   reports p50/p99/p999 from,
//! * [`loadgen`] — the load-generator core (also used by the smoke
//!   tests): hammer a cluster with inserts and queries, report sustained
//!   ops/s and latency percentiles, verify conservation and audit
//!   cleanliness.

#![warn(missing_docs)]

pub mod config;
pub mod control;
pub mod hist;
pub mod loadgen;
pub mod server;

pub use config::ClusterSpec;
pub use control::{ControlClient, ControlRequest, ControlResponse};
pub use hist::LatencyHistogram;
pub use loadgen::{LoadOptions, LoadReport};
