//! The control protocol between clients (`mind-loadgen`, operators,
//! tests) and a `mind-node` process.
//!
//! Serde-encoded [`ControlRequest`]/[`ControlResponse`] values travel in
//! the same length-delimited frames the overlay uses (`mind_net::frame`),
//! over a dedicated control socket per node. One request, one response,
//! in order, per connection; connections are cheap and long-lived.

use mind_audit::NodeSnapshot;
use mind_core::{QueryOutcome, Replication};
use mind_net::frame::{read_frame, write_frame};
use mind_net::{from_bytes, to_bytes, HostStatsSnapshot};
use mind_types::{IndexSchema, Record};
use serde::{Deserialize, Serialize};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A client operation on one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ControlRequest {
    /// Liveness probe.
    Ping,
    /// Create an index (floods cluster-wide from this node). The cut
    /// tree is built node-side as an even `depth`-deep split of the
    /// schema bounds.
    CreateIndex {
        /// The index schema.
        schema: IndexSchema,
        /// Even cut-tree depth.
        depth: u8,
        /// Replication policy.
        replication: Replication,
    },
    /// Insert a batch of records into `index` at this node. One request,
    /// one ack — the client's unit of batching.
    Insert {
        /// Target index tag.
        index: String,
        /// Records in schema order.
        rows: Vec<Record>,
    },
    /// Range query over `index`; blocks node-side until the distributed
    /// query completes or times out.
    Query {
        /// Target index tag.
        index: String,
        /// Per-dimension lower corner (inclusive).
        lo: Vec<u64>,
        /// Per-dimension upper corner (inclusive).
        hi: Vec<u64>,
    },
    /// Rows this node holds as primary for `index`, all versions.
    PrimaryRows {
        /// Target index tag.
        index: String,
    },
    /// Index tags this node knows.
    Catalog,
    /// Whether the node's overlay considers itself a member.
    IsMember,
    /// The node's transport counters.
    HostStats,
    /// The node's audited state (for fleet-wide invariant checks).
    Snapshot,
    /// Clean process shutdown via the stop flag (no signals involved).
    Shutdown,
}

/// The node's answer to one [`ControlRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ControlResponse {
    /// Generic success.
    Ok,
    /// Answer to [`ControlRequest::Ping`].
    Pong,
    /// Answer to [`ControlRequest::Query`].
    Query(QueryOutcome),
    /// A count (primary rows).
    Count(u64),
    /// Answer to [`ControlRequest::Catalog`].
    Catalog(Vec<String>),
    /// Answer to [`ControlRequest::IsMember`].
    Member(bool),
    /// Answer to [`ControlRequest::HostStats`].
    HostStats(HostStatsSnapshot),
    /// Answer to [`ControlRequest::Snapshot`].
    Snapshot(NodeSnapshot),
    /// The operation failed node-side.
    Err(String),
}

/// A blocking control-protocol client over one TCP connection.
pub struct ControlClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ControlClient {
    /// Connects to a node's control address.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(ControlClient { reader, writer })
    }

    /// Connects, retrying until the node answers a ping or the deadline
    /// passes — the "wait for the process to come up" helper.
    pub fn connect_ready(addr: SocketAddr, deadline: Duration) -> io::Result<Self> {
        let end = std::time::Instant::now() + deadline;
        loop {
            match Self::connect(addr, Duration::from_millis(250)) {
                Ok(mut c) => match c.call(&ControlRequest::Ping) {
                    Ok(ControlResponse::Pong) => return Ok(c),
                    _ => {}
                },
                Err(_) => {}
            }
            if std::time::Instant::now() >= end {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("{addr} never answered a ping"),
                ));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// One request/response round trip.
    pub fn call(&mut self, req: &ControlRequest) -> io::Result<ControlResponse> {
        let bytes = to_bytes(req).map_err(io::Error::other)?;
        write_frame(&mut self.writer, &bytes)?;
        let Some(reply) = read_frame(&mut self.reader)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "control connection closed mid-call",
            ));
        };
        from_bytes(&reply).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mind_types::{AttrDef, AttrKind};

    #[test]
    fn requests_roundtrip_through_the_wire_codec() {
        let reqs = vec![
            ControlRequest::Ping,
            ControlRequest::CreateIndex {
                schema: IndexSchema::new(
                    "t",
                    vec![AttrDef::new("x", AttrKind::Generic, 0, 100)],
                    1,
                ),
                depth: 4,
                replication: Replication::Level(1),
            },
            ControlRequest::Insert {
                index: "t".into(),
                rows: vec![Record::new(vec![7])],
            },
            ControlRequest::Query {
                index: "t".into(),
                lo: vec![0],
                hi: vec![100],
            },
            ControlRequest::Shutdown,
        ];
        for req in reqs {
            let bytes = to_bytes(&req).unwrap();
            let back: ControlRequest = from_bytes(&bytes).unwrap();
            assert_eq!(format!("{req:?}"), format!("{back:?}"));
        }
        let resp = ControlResponse::Count(42);
        let bytes = to_bytes(&resp).unwrap();
        let back: ControlResponse = from_bytes(&bytes).unwrap();
        assert_eq!(format!("{resp:?}"), format!("{back:?}"));
    }
}
