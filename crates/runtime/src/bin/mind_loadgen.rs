//! `mind-loadgen`: hammer a `mind-node` cluster, report throughput and
//! latency percentiles, verify conservation and audit cleanliness.
//!
//! ```text
//! mind-loadgen --cluster cluster.txt [--inserts 100000] [--batch 64]
//!              [--queries 32] [--depth 8] [--replication none|level:K|full]
//!              [--timeout-s 90] [--min-insert-rate 0] [--shutdown]
//! ```
//!
//! Prints stable `key=value` lines (rates, p50/p99/p999 for inserts and
//! queries, `conserved=`, `audit_clean=`). Exits nonzero if the run
//! errors, conservation or the audit fails, or the sustained insert rate
//! falls below `--min-insert-rate`. `--shutdown` sends every node a
//! clean control-protocol shutdown after the run.

use mind_core::Replication;
use mind_runtime::loadgen::{run, shutdown_cluster};
use mind_runtime::{ClusterSpec, LoadOptions};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    opts: LoadOptions,
    min_insert_rate: f64,
    shutdown: bool,
}

fn parse_replication(s: &str) -> Result<Replication, String> {
    match s {
        "none" => Ok(Replication::None),
        "full" => Ok(Replication::Full),
        other => match other.strip_prefix("level:") {
            Some(k) => Ok(Replication::Level(
                k.parse().map_err(|e| format!("--replication: {e}"))?,
            )),
            None => Err(format!("--replication: unknown policy {other:?}")),
        },
    }
}

fn parse_args() -> Result<Args, String> {
    let mut cluster: Option<PathBuf> = None;
    let mut opts = LoadOptions::default();
    let mut min_insert_rate = 0.0f64;
    let mut shutdown = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--cluster" => cluster = Some(PathBuf::from(val("--cluster")?)),
            "--inserts" => {
                opts.inserts = val("--inserts")?
                    .parse()
                    .map_err(|e| format!("--inserts: {e}"))?;
            }
            "--batch" => {
                opts.batch = val("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
            }
            "--queries" => {
                opts.queries = val("--queries")?
                    .parse()
                    .map_err(|e| format!("--queries: {e}"))?;
            }
            "--depth" => {
                opts.depth = val("--depth")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?;
            }
            "--replication" => opts.replication = parse_replication(&val("--replication")?)?,
            "--index" => opts.index = val("--index")?,
            "--timeout-s" => {
                opts.timeout = Duration::from_secs(
                    val("--timeout-s")?
                        .parse()
                        .map_err(|e| format!("--timeout-s: {e}"))?,
                );
            }
            "--min-insert-rate" => {
                min_insert_rate = val("--min-insert-rate")?
                    .parse()
                    .map_err(|e| format!("--min-insert-rate: {e}"))?;
            }
            "--shutdown" => shutdown = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let cluster = cluster.ok_or("--cluster is required")?;
    opts.cluster = ClusterSpec::load(&cluster)?;
    Ok(Args {
        opts,
        min_insert_rate,
        shutdown,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mind-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match run(&args.opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mind-loadgen: run failed: {e}");
            if args.shutdown {
                shutdown_cluster(&args.opts.cluster);
            }
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.render());
    if args.shutdown {
        shutdown_cluster(&args.opts.cluster);
    }

    let mut ok = true;
    if !report.conserved {
        eprintln!(
            "mind-loadgen: FAIL conservation ({} stored != {} inserted)",
            report.stored_total, report.inserts_total
        );
        ok = false;
    }
    if !report.audit_clean {
        eprintln!("mind-loadgen: FAIL fleet audit");
        ok = false;
    }
    if report.insert_rate < args.min_insert_rate {
        eprintln!(
            "mind-loadgen: FAIL insert rate {:.0} < required {:.0}",
            report.insert_rate, args.min_insert_rate
        );
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
