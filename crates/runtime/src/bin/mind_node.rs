//! `mind-node`: one process, one MIND node.
//!
//! ```text
//! mind-node --id 2 --cluster cluster.txt [--batch-max 64]
//!           [--batch-age-ms 5] [--retry-ms 500] [--hb-ms 500]
//!           [--anti-entropy-ms 45000]
//! ```
//!
//! Reads the cluster spec (`id node_addr control_addr` per line), binds
//! this node's overlay and control listeners, hosts the `MindNode` logic
//! on a `TcpHost`, and serves the control protocol until a `Shutdown`
//! request flips the stop flag — no signals involved. The store backend
//! honors `MIND_STORE`/`MIND_SHARDS`, defaulting the sharded backend's
//! shard count to the host's core count (`StoreKind::from_env_runtime`).

use mind_core::{MindConfig, MindNode};
use mind_net::TcpHost;
use mind_overlay::{OverlayConfig, StaticTopology};
use mind_runtime::{server, ClusterSpec};
use mind_store::StoreKind;
use mind_types::node::MILLIS;
use mind_types::NodeId;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    id: u32,
    cluster: PathBuf,
    batch_max: usize,
    batch_age_ms: u64,
    retry_ms: u64,
    hb_ms: u64,
    anti_entropy_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut id = None;
    let mut cluster = None;
    let mut batch_max = 64usize;
    let mut batch_age_ms = 5u64;
    let mut retry_ms = 500u64;
    let mut hb_ms = 500u64;
    let mut anti_entropy_ms = 45_000u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--id" => id = Some(val("--id")?.parse().map_err(|e| format!("--id: {e}"))?),
            "--cluster" => cluster = Some(PathBuf::from(val("--cluster")?)),
            "--batch-max" => {
                batch_max = val("--batch-max")?
                    .parse()
                    .map_err(|e| format!("--batch-max: {e}"))?;
            }
            "--batch-age-ms" => {
                batch_age_ms = val("--batch-age-ms")?
                    .parse()
                    .map_err(|e| format!("--batch-age-ms: {e}"))?;
            }
            "--retry-ms" => {
                retry_ms = val("--retry-ms")?
                    .parse()
                    .map_err(|e| format!("--retry-ms: {e}"))?;
            }
            "--hb-ms" => {
                hb_ms = val("--hb-ms")?
                    .parse()
                    .map_err(|e| format!("--hb-ms: {e}"))?;
            }
            "--anti-entropy-ms" => {
                anti_entropy_ms = val("--anti-entropy-ms")?
                    .parse()
                    .map_err(|e| format!("--anti-entropy-ms: {e}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Args {
        id: id.ok_or("--id is required")?,
        cluster: cluster.ok_or("--cluster is required")?,
        batch_max: batch_max.max(1),
        batch_age_ms,
        retry_ms,
        hb_ms,
        anti_entropy_ms,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mind-node: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match ClusterSpec::load(&args.cluster) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mind-node: bad cluster spec: {e}");
            return ExitCode::FAILURE;
        }
    };
    let id = NodeId(args.id);
    let Some(me) = spec.node(id).copied() else {
        eprintln!("mind-node: id {} not in the cluster spec", args.id);
        return ExitCode::FAILURE;
    };

    let n = spec.len();
    let topo = StaticTopology::balanced(n);
    let overlay_cfg = OverlayConfig {
        hb_interval: args.hb_ms * MILLIS,
        ..OverlayConfig::default()
    };
    // Boot epoch: strictly increasing across restarts of this node id, so
    // peers can tell this incarnation's fresh op counters from the dead
    // one's settled ones (the reliability horizon protocol).
    let boot_id = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(1);
    let mind_cfg = MindConfig {
        store_kind: StoreKind::from_env_runtime(),
        retry_timeout: args.retry_ms * MILLIS,
        anti_entropy_interval: args.anti_entropy_ms * MILLIS,
        insert_batch_max: args.batch_max,
        insert_batch_age: args.batch_age_ms * MILLIS,
        boot_id,
        ..MindConfig::default()
    };
    let logic = MindNode::new_static(
        id,
        topo.code(args.id as usize),
        topo.neighbor_entries(args.id as usize),
        overlay_cfg,
        mind_cfg,
    );

    let node_listener = match TcpListener::bind(me.node_addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mind-node: cannot bind node addr {}: {e}", me.node_addr);
            return ExitCode::FAILURE;
        }
    };
    let control_listener = match TcpListener::bind(me.control_addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!(
                "mind-node: cannot bind control addr {}: {e}",
                me.control_addr
            );
            return ExitCode::FAILURE;
        }
    };

    let host = match TcpHost::spawn(id, node_listener, spec.peer_map(), logic) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("mind-node: host spawn failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "mind-node id={} node_addr={} control_addr={} peers={}",
        args.id, me.node_addr, me.control_addr, n
    );

    // Serve until a Shutdown request flips the stop flag.
    server::serve(control_listener, id, host.handle());

    let (_logic, _seq) = host.halt();
    println!("mind-node id={} stopped", args.id);
    ExitCode::SUCCESS
}
