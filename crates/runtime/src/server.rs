//! The per-process control server: bridges control-protocol connections
//! onto the hosted node's driver thread.
//!
//! One thread per control connection; each request becomes one
//! [`HostHandle::invoke`] (or a short invoke-poll loop for distributed
//! queries, which the node answers asynchronously). Shutdown is
//! SIGTERM-free: a [`ControlRequest::Shutdown`] flips the shared stop
//! flag, the accept loop unblocks itself, and the process's main thread
//! proceeds to halt the host.

use crate::control::{ControlRequest, ControlResponse};
use mind_core::audit::snapshot_node;
use mind_core::{MindNode, QueryOutcome};
use mind_histogram::CutTree;
use mind_net::frame::{read_frame, write_frame};
use mind_net::{from_bytes, to_bytes, HostHandle};
use mind_types::{HyperRect, NodeId};
use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a control-side query waits for the distributed answer.
const QUERY_WAIT: Duration = Duration::from_secs(120);

/// Serves the control protocol for one hosted node until a
/// [`ControlRequest::Shutdown`] arrives (or the stop flag is flipped by
/// other means). Blocks the calling thread.
pub fn serve(listener: TcpListener, id: NodeId, handle: HostHandle<MindNode>) {
    let stop = Arc::new(AtomicBool::new(false));
    let local = listener.local_addr().ok();
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let handle = handle.clone();
        let stop = Arc::clone(&stop);
        let local = local;
        let spawned = std::thread::Builder::new()
            .name(format!("mind-ctl-{}", id.0))
            .spawn(move || {
                let _ = stream.set_nodelay(true);
                let Ok(peer) = stream.try_clone() else { return };
                let mut reader = BufReader::new(peer);
                let mut writer = BufWriter::new(stream);
                while let Ok(Some(bytes)) = read_frame(&mut reader) {
                    let req: ControlRequest = match from_bytes(&bytes) {
                        Ok(r) => r,
                        Err(_) => break, // corrupted client
                    };
                    let is_shutdown = matches!(req, ControlRequest::Shutdown);
                    let resp = answer(&handle, id, req);
                    if let Ok(frame) = to_bytes(&resp) {
                        if write_frame(&mut writer, &frame).is_err() {
                            break;
                        }
                    }
                    if is_shutdown {
                        stop.store(true, Ordering::Relaxed);
                        // Unblock the accept loop.
                        if let Some(addr) = local {
                            let _ = TcpStream::connect(addr);
                        }
                        return;
                    }
                }
            });
        if spawned.is_err() {
            break;
        }
    }
}

/// Executes one request against the hosted node.
fn answer(handle: &HostHandle<MindNode>, id: NodeId, req: ControlRequest) -> ControlResponse {
    match req {
        ControlRequest::Ping => ControlResponse::Pong,
        ControlRequest::HostStats => ControlResponse::HostStats(handle.stats()),
        ControlRequest::CreateIndex {
            schema,
            depth,
            replication,
        } => {
            let cuts = CutTree::even(schema.bounds(), depth);
            match handle.invoke(move |n, _now, out| n.create_index(schema, cuts, replication, out))
            {
                Some(Ok(())) => ControlResponse::Ok,
                Some(Err(e)) => ControlResponse::Err(e.to_string()),
                None => ControlResponse::Err("host stopped".into()),
            }
        }
        ControlRequest::Insert { index, rows } => {
            let r = handle.invoke(move |n, now, out| {
                for rec in rows {
                    n.insert(now, &index, rec, out)?;
                }
                Ok::<(), mind_types::MindError>(())
            });
            match r {
                Some(Ok(())) => ControlResponse::Ok,
                Some(Err(e)) => ControlResponse::Err(e.to_string()),
                None => ControlResponse::Err("host stopped".into()),
            }
        }
        ControlRequest::Query { index, lo, hi } => {
            let rect = HyperRect::new(lo, hi);
            let qid = {
                let index = index.clone();
                handle.invoke(move |n, now, out| n.query(now, &index, rect, vec![], out))
            };
            let qid = match qid {
                Some(Ok(q)) => q,
                Some(Err(e)) => return ControlResponse::Err(e.to_string()),
                None => return ControlResponse::Err("host stopped".into()),
            };
            // The distributed query completes asynchronously; poll the
            // tracker on the driver thread until it does.
            let deadline = Instant::now() + QUERY_WAIT;
            loop {
                match handle.invoke(move |n, _now, _out| n.query_outcome(qid)) {
                    Some(Some(outcome)) => return ControlResponse::Query(outcome),
                    Some(None) => {
                        if Instant::now() >= deadline {
                            return ControlResponse::Query(QueryOutcome {
                                complete: false,
                                latency: None,
                                records: vec![],
                                cost_nodes: 0,
                            });
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    None => return ControlResponse::Err("host stopped".into()),
                }
            }
        }
        ControlRequest::PrimaryRows { index } => {
            match handle.invoke(move |n, _now, _out| {
                n.index_state(&index).map(|s| s.primary_rows()).unwrap_or(0)
            }) {
                Some(count) => ControlResponse::Count(count),
                None => ControlResponse::Err("host stopped".into()),
            }
        }
        ControlRequest::Catalog => match handle.invoke(|n, _now, _out| n.index_tags()) {
            Some(tags) => ControlResponse::Catalog(tags),
            None => ControlResponse::Err("host stopped".into()),
        },
        ControlRequest::IsMember => match handle.invoke(|n, _now, _out| n.overlay().is_member()) {
            Some(m) => ControlResponse::Member(m),
            None => ControlResponse::Err("host stopped".into()),
        },
        ControlRequest::Snapshot => {
            match handle.invoke(move |n, _now, _out| snapshot_node(id, true, n)) {
                Some(snap) => ControlResponse::Snapshot(snap),
                None => ControlResponse::Err("host stopped".into()),
            }
        }
        ControlRequest::Shutdown => ControlResponse::Ok,
    }
}
