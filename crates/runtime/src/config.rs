//! The cluster spec file shared by every `mind-node` process.
//!
//! Plain text, one node per line, `#` comments:
//!
//! ```text
//! # id  node_addr          control_addr
//! 0     127.0.0.1:7000     127.0.0.1:7100
//! 1     127.0.0.1:7001     127.0.0.1:7101
//! ```
//!
//! Node ids must be dense (`0..n`) because the static hypercube topology
//! assigns codes by position. Every process reads the same file, so the
//! peer map is complete before any node starts.

use mind_types::NodeId;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::Path;

/// One node's addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    /// The node's id (dense, `0..n`).
    pub id: NodeId,
    /// Where the node's overlay transport listens.
    pub node_addr: SocketAddr,
    /// Where the node's control server listens.
    pub control_addr: SocketAddr,
}

/// The parsed cluster spec: every node of the deployment, in id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Node entries, sorted by id; ids are dense `0..n`.
    pub nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// Parses a spec from its text form.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut nodes = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(id), Some(na), Some(ca)) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!(
                    "line {}: expected `id node_addr control_addr`, got {raw:?}",
                    lineno + 1
                ));
            };
            if parts.next().is_some() {
                return Err(format!("line {}: trailing fields in {raw:?}", lineno + 1));
            }
            let id: u32 = id
                .parse()
                .map_err(|e| format!("line {}: bad node id {id:?}: {e}", lineno + 1))?;
            let node_addr: SocketAddr = na
                .parse()
                .map_err(|e| format!("line {}: bad node addr {na:?}: {e}", lineno + 1))?;
            let control_addr: SocketAddr = ca
                .parse()
                .map_err(|e| format!("line {}: bad control addr {ca:?}: {e}", lineno + 1))?;
            nodes.push(NodeSpec {
                id: NodeId(id),
                node_addr,
                control_addr,
            });
        }
        if nodes.is_empty() {
            return Err("spec has no nodes".into());
        }
        nodes.sort_by_key(|n| n.id.0);
        for (k, n) in nodes.iter().enumerate() {
            if n.id.0 as usize != k {
                return Err(format!(
                    "node ids must be dense 0..{}; missing or duplicate id around {}",
                    nodes.len(),
                    n.id.0
                ));
            }
        }
        Ok(ClusterSpec { nodes })
    }

    /// Reads and parses a spec file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Renders the spec back to its file form.
    pub fn render(&self) -> String {
        let mut s = String::from("# id node_addr control_addr\n");
        for n in &self.nodes {
            let _ = writeln!(s, "{} {} {}", n.id.0, n.node_addr, n.control_addr);
        }
        s
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the spec is empty (parse rejects this).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The entry for `id`.
    pub fn node(&self, id: NodeId) -> Option<&NodeSpec> {
        self.nodes.get(id.0 as usize)
    }

    /// The overlay peer map every `TcpHost` needs.
    pub fn peer_map(&self) -> HashMap<NodeId, SocketAddr> {
        self.nodes.iter().map(|n| (n.id, n.node_addr)).collect()
    }

    /// A localhost spec on ephemeral ports, for tests and local bursts:
    /// binds `2n` listeners to reserve distinct ports, then releases
    /// them. (The tiny release-to-spawn race is acceptable for tooling.)
    pub fn localhost(n: usize) -> std::io::Result<Self> {
        let mut nodes = Vec::with_capacity(n);
        let mut keep = Vec::new();
        for k in 0..n {
            let ln = std::net::TcpListener::bind("127.0.0.1:0")?;
            let lc = std::net::TcpListener::bind("127.0.0.1:0")?;
            nodes.push(NodeSpec {
                id: NodeId(k as u32),
                node_addr: ln.local_addr()?,
                control_addr: lc.local_addr()?,
            });
            keep.push((ln, lc));
        }
        drop(keep);
        Ok(ClusterSpec { nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_and_validates() {
        let text =
            "# comment\n1 127.0.0.1:7001 127.0.0.1:7101\n0 127.0.0.1:7000 127.0.0.1:7100 # tail\n";
        let spec = ClusterSpec::parse(text).unwrap();
        assert_eq!(spec.len(), 2);
        assert_eq!(spec.nodes[0].id, NodeId(0));
        assert_eq!(spec.nodes[1].node_addr, "127.0.0.1:7001".parse().unwrap());
        let again = ClusterSpec::parse(&spec.render()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn parse_rejects_gaps_and_garbage() {
        assert!(ClusterSpec::parse("").is_err());
        assert!(ClusterSpec::parse("0 127.0.0.1:1\n").is_err());
        assert!(
            ClusterSpec::parse("0 127.0.0.1:1 127.0.0.1:2\n2 127.0.0.1:3 127.0.0.1:4\n").is_err()
        );
        assert!(ClusterSpec::parse("0 nonsense 127.0.0.1:2\n").is_err());
    }
}
