//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls for plain structs and enums by
//! walking the raw [`proc_macro::TokenStream`] — no `syn`/`quote`, so it
//! builds with nothing but the toolchain. Supported shapes are exactly what
//! this workspace derives: unit/newtype/tuple/named structs, enums whose
//! variants are unit/newtype/tuple/named, and simple unbounded type
//! parameters (e.g. `OverlayMsg<P>`). `#[serde(...)]` attributes are not
//! supported; fields encode positionally in declaration order, which is
//! what `mind-net`'s non-self-describing wire format expects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ------------------------------------------------------------- parsing

enum Body {
    /// `struct Name;`
    UnitStruct,
    /// `struct Name(A, B, ...);` — field count.
    TupleStruct(usize),
    /// `struct Name { a: A, ... }` — field names in order.
    NamedStruct(Vec<String>),
    /// `enum Name { ... }`.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    /// Type parameter names, e.g. `["P"]` for `OverlayMsg<P>`.
    generics: Vec<String>,
    body: Body,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(crate)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;

    // Optional generics: collect the first ident of each `<...>` segment.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            let mut expect_param = true;
            while depth > 0 {
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                    }
                    Some(TokenTree::Ident(id)) if expect_param && depth == 1 => {
                        generics.push(id.to_string());
                        expect_param = false;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                        panic!("lifetime parameters are not supported by the vendored derive")
                    }
                    Some(_) => {}
                    None => panic!("unbalanced generics on `{name}`"),
                }
                i += 1;
            }
        }
    }

    let body = if kind == "struct" {
        match tokens.get(i) {
            None | Some(TokenTree::Punct(_)) => Body::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            other => panic!("unexpected struct body: {other:?}"),
        }
    } else if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        }
    } else {
        panic!("can only derive for structs and enums, found `{kind}`");
    };

    Item {
        name,
        generics,
        body,
    }
}

/// Splits `stream` at commas that are outside any `<...>` nesting and
/// returns the number of non-empty segments.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut segment_nonempty = false;
    let mut angle_depth = 0usize;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if segment_nonempty {
                    count += 1;
                }
                segment_nonempty = false;
                continue;
            }
            _ => {}
        }
        segment_nonempty = true;
    }
    if segment_nonempty {
        count += 1;
    }
    count
}

/// Extracts field names from `a: A, b: B, ...`, skipping attributes,
/// visibility, and type tokens (angle-bracket aware).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "expected `:` after field `{}`, found {other:?}",
                fields.last().unwrap()
            ),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip to past the next comma (covers explicit discriminants).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------- generation

impl Item {
    /// `Name` or `Name<P, Q>`.
    fn self_ty(&self) -> String {
        if self.generics.is_empty() {
            self.name.clone()
        } else {
            format!("{}<{}>", self.name, self.generics.join(", "))
        }
    }

    /// Impl generics with the given serde bound, e.g. `<'de, P: Bound>`.
    fn impl_generics(&self, lifetime: Option<&str>, bound: &str) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(lt) = lifetime {
            parts.push(lt.to_string());
        }
        for g in &self.generics {
            parts.push(format!("{g}: {bound}"));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("<{}>", parts.join(", "))
        }
    }

    /// Phantom payload keeping visitor structs generic-aware.
    fn phantom_ty(&self) -> String {
        if self.generics.is_empty() {
            "fn()".to_string()
        } else {
            format!("fn() -> ({},)", self.generics.join(", "))
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let self_ty = item.self_ty();
    let impl_generics = item.impl_generics(None, "::serde::Serialize");

    let body = match &item.body {
        Body::UnitStruct => format!("__serializer.serialize_unit_struct(\"{name}\")"),
        Body::TupleStruct(1) => {
            format!("__serializer.serialize_newtype_struct(\"{name}\", &self.0)")
        }
        Body::TupleStruct(n) => {
            let mut s = format!(
                "let mut __state = ::serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n}usize)?;\n"
            );
            for idx in 0..*n {
                s += &format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{idx})?;\n"
                );
            }
            s += "::serde::ser::SerializeTupleStruct::end(__state)";
            s
        }
        Body::NamedStruct(fields) => {
            let n = fields.len();
            let mut s = format!(
                "let mut __state = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {n}usize)?;\n"
            );
            for f in fields {
                s += &format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{f}\", &self.{f})?;\n"
                );
            }
            s += "::serde::ser::SerializeStruct::end(__state)";
            s
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms += &format!(
                            "{name}::{vname} => __serializer.serialize_unit_variant(\"{name}\", {idx}u32, \"{vname}\"),\n"
                        );
                    }
                    VariantShape::Tuple(1) => {
                        arms += &format!(
                            "{name}::{vname}(__f0) => __serializer.serialize_newtype_variant(\"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\nlet mut __state = ::serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {n}usize)?;\n",
                            binders.join(", ")
                        );
                        for b in &binders {
                            arm += &format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {b})?;\n"
                            );
                        }
                        arm += "::serde::ser::SerializeTupleVariant::end(__state)\n},\n";
                        arms += &arm;
                    }
                    VariantShape::Named(fields) => {
                        let n = fields.len();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut __state = ::serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {n}usize)?;\n",
                            fields.join(", ")
                        );
                        for f in fields {
                            arm += &format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{f}\", {f})?;\n"
                            );
                        }
                        arm += "::serde::ser::SerializeStructVariant::end(__state)\n},\n";
                        arms += &arm;
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };

    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl{impl_generics} ::serde::Serialize for {self_ty} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Emits positional `visit_seq` statements binding `__f0..__fN`.
fn gen_seq_bindings(n: usize, what: &str) -> String {
    let mut s = String::new();
    for k in 0..n {
        s += &format!(
            "let __f{k} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                 Some(__v) => __v,\n\
                 None => return Err(::serde::de::Error::custom(\"{what} is missing field {k}\")),\n\
             }};\n"
        );
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let self_ty = item.self_ty();
    let impl_generics = item.impl_generics(Some("'de"), "::serde::Deserialize<'de>");
    let visitor_generics = item.impl_generics(None, "");
    let visitor_generics = visitor_generics.replace(": ", "").replace(':', "");
    let visitor_bounds = item.impl_generics(Some("'de"), "::serde::Deserialize<'de>");
    let phantom = item.phantom_ty();

    // Every visitor struct follows the same skeleton.
    let visitor = |body: &str| -> String {
        format!(
                "struct __Visitor{visitor_generics}(::core::marker::PhantomData<{phantom}>);\n\
                 impl{visitor_bounds} ::serde::de::Visitor<'de> for __Visitor{visitor_generics} {{\n\
                     type Value = {self_ty};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                         __f.write_str(\"{name}\")\n\
                     }}\n\
                     {body}\n\
                 }}"
            )
    };

    let (visitor_impl, dispatch) = match &item.body {
        Body::UnitStruct => (
            visitor(
                "fn visit_unit<__E: ::serde::de::Error>(self) -> ::core::result::Result<Self::Value, __E> {\n\
                     Ok(Self::Value::default_unit())\n\
                 }",
            )
            .replace(
                "Self::Value::default_unit()",
                &format!("{name}"),
            ),
            format!(
                "::serde::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __Visitor(::core::marker::PhantomData))"
            ),
        ),
        Body::TupleStruct(1) => (
            visitor(&format!(
                "fn visit_newtype_struct<__D: ::serde::Deserializer<'de>>(self, __d: __D)\n\
                     -> ::core::result::Result<Self::Value, __D::Error> {{\n\
                     ::serde::Deserialize::deserialize(__d).map({name})\n\
                 }}"
            )),
            format!(
                "::serde::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", __Visitor(::core::marker::PhantomData))"
            ),
        ),
        Body::TupleStruct(n) => {
            let bindings = gen_seq_bindings(*n, name);
            let args: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
            (
                visitor(&format!(
                    "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         {bindings}\n\
                         Ok({name}({}))\n\
                     }}",
                    args.join(", ")
                )),
                format!(
                    "::serde::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {n}usize, __Visitor(::core::marker::PhantomData))"
                ),
            )
        }
        Body::NamedStruct(fields) => {
            let bindings = gen_seq_bindings(fields.len(), name);
            let ctor: Vec<String> = fields
                .iter()
                .enumerate()
                .map(|(k, f)| format!("{f}: __f{k}"))
                .collect();
            let field_names: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
            (
                visitor(&format!(
                    "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         {bindings}\n\
                         Ok({name} {{ {} }})\n\
                     }}",
                    ctor.join(", ")
                )),
                format!(
                    "::serde::Deserializer::deserialize_struct(__deserializer, \"{name}\", &[{}], __Visitor(::core::marker::PhantomData))",
                    field_names.join(", ")
                ),
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            let mut inner_visitors = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms += &format!(
                            "{idx}u32 => {{ ::serde::de::VariantAccess::unit_variant(__variant)?; Ok({name}::{vname}) }},\n"
                        );
                    }
                    VariantShape::Tuple(1) => {
                        arms += &format!(
                            "{idx}u32 => ::serde::de::VariantAccess::newtype_variant(__variant).map({name}::{vname}),\n"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let bindings = gen_seq_bindings(*n, vname);
                        let args: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        inner_visitors += &format!(
                            "struct __V{idx}{visitor_generics}(::core::marker::PhantomData<{phantom}>);\n\
                             impl{visitor_bounds} ::serde::de::Visitor<'de> for __V{idx}{visitor_generics} {{\n\
                                 type Value = {self_ty};\n\
                                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                                     __f.write_str(\"{name}::{vname}\")\n\
                                 }}\n\
                                 fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                                     -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                                     {bindings}\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}\n\
                             }}\n",
                            args.join(", ")
                        );
                        arms += &format!(
                            "{idx}u32 => ::serde::de::VariantAccess::tuple_variant(__variant, {n}usize, __V{idx}(::core::marker::PhantomData)),\n"
                        );
                    }
                    VariantShape::Named(fields) => {
                        let bindings = gen_seq_bindings(fields.len(), vname);
                        let ctor: Vec<String> = fields
                            .iter()
                            .enumerate()
                            .map(|(k, f)| format!("{f}: __f{k}"))
                            .collect();
                        let field_names: Vec<String> =
                            fields.iter().map(|f| format!("\"{f}\"")).collect();
                        inner_visitors += &format!(
                            "struct __V{idx}{visitor_generics}(::core::marker::PhantomData<{phantom}>);\n\
                             impl{visitor_bounds} ::serde::de::Visitor<'de> for __V{idx}{visitor_generics} {{\n\
                                 type Value = {self_ty};\n\
                                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                                     __f.write_str(\"{name}::{vname}\")\n\
                                 }}\n\
                                 fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                                     -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                                     {bindings}\n\
                                     Ok({name}::{vname} {{ {} }})\n\
                                 }}\n\
                             }}\n",
                            ctor.join(", ")
                        );
                        arms += &format!(
                            "{idx}u32 => ::serde::de::VariantAccess::struct_variant(__variant, &[{}], __V{idx}(::core::marker::PhantomData)),\n",
                            field_names.join(", ")
                        );
                    }
                }
            }
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let body = format!(
                "fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A)\n\
                     -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                     {inner_visitors}\n\
                     let (__idx, __variant): (u32, _) = ::serde::de::EnumAccess::variant(__data)?;\n\
                     match __idx {{\n\
                         {arms}\n\
                         __other => Err(::serde::de::Error::custom(format!(\n\
                             \"invalid {name} variant index {{__other}}\"))),\n\
                     }}\n\
                 }}"
            );
            (
                visitor(&body),
                format!(
                    "::serde::Deserializer::deserialize_enum(__deserializer, \"{name}\", &[{}], __Visitor(::core::marker::PhantomData))",
                    variant_names.join(", ")
                ),
            )
        }
    };

    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, non_camel_case_types)]\n\
         impl{impl_generics} ::serde::Deserialize<'de> for {self_ty} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {visitor_impl}\n\
                 {dispatch}\n\
             }}\n\
         }}"
    )
}
