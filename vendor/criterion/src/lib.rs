//! Offline stand-in for the `criterion` crate.
//!
//! Same surface the workspace's benches use — `Criterion::bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `criterion_group!`,
//! `criterion_main!`, `black_box` — but measurement is a simple time-boxed
//! loop reporting mean ns/iter on stdout. No statistics, plots or reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup; only affects batch length here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing for one benchmark's routine.
pub struct Bencher {
    /// Total measured time and iteration count for the report line.
    elapsed: Duration,
    iters: u64,
}

/// Measurement budget per benchmark; tiny by design so accidentally
/// running benches (e.g. `cargo test --benches`) stays fast.
const TIME_BOX: Duration = Duration::from_millis(20);
const MAX_ITERS: u64 = 10_000;

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= TIME_BOX || self.iters >= MAX_ITERS {
                break;
            }
        }
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.elapsed >= TIME_BOX || self.iters >= MAX_ITERS {
                break;
            }
        }
    }

    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        loop {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.elapsed >= TIME_BOX || self.iters >= MAX_ITERS {
                break;
            }
        }
    }
}

/// Entry point matching criterion's builder type.
///
/// Like real criterion, positional command-line arguments act as substring
/// filters: `cargo bench -- kdtree` runs only benchmarks whose name
/// contains `kdtree`. Arguments starting with `-` (harness flags such as
/// `--bench`) are ignored; with no filters, everything runs.
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filters: std::env::args()
                .skip(1)
                .filter(|a| !a.starts_with('-'))
                .collect(),
        }
    }
}

impl Criterion {
    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        if !self.selected(name) {
            return self;
        }
        let mut b = Bencher::new();
        f(&mut b);
        let per_iter = if b.iters == 0 {
            0
        } else {
            b.elapsed.as_nanos() / u128::from(b.iters)
        };
        println!(
            "bench {name:<40} {per_iter:>12} ns/iter ({} iters)",
            b.iters
        );
        self
    }
}

/// `criterion_group!(name, target...)` — a fn running each target with a
/// fresh default `Criterion`. The `config = ...` form is not supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
