//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the cursor surface `mind-net`'s wire codec uses:
//! [`Buf`] over `&[u8]` (reads consume the front of the slice) and
//! [`BufMut`] over `Vec<u8>` (little-endian appends). Semantics match the
//! real crate: reads past the end panic, so callers must check
//! [`Buf::remaining`] first.

#![forbid(unsafe_code)]

macro_rules! get_le {
    ($($name:ident -> $ty:ty),* $(,)?) => {
        $(
            /// Reads a little-endian value, advancing the cursor.
            fn $name(&mut self) -> $ty {
                let mut raw = [0u8; std::mem::size_of::<$ty>()];
                self.copy_to_slice(&mut raw);
                <$ty>::from_le_bytes(raw)
            }
        )*
    };
}

macro_rules! put_le {
    ($($name:ident($ty:ty)),* $(,)?) => {
        $(
            /// Appends a value in little-endian byte order.
            fn $name(&mut self, v: $ty) {
                self.put_slice(&v.to_le_bytes());
            }
        )*
    };
}

/// Read access to a buffer of bytes, consumed front to back.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Discards the next `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Fills `dst` from the front of the buffer. Panics if too short.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    /// Reads one signed byte, advancing the cursor.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    get_le! {
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_i16_le -> i16,
        get_i32_le -> i32,
        get_i64_le -> i64,
        get_f32_le -> f32,
        get_f64_le -> f64,
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    put_le! {
        put_u16_le(u16),
        put_u32_le(u32),
        put_u64_le(u64),
        put_i16_le(i16),
        put_i32_le(i32),
        put_i64_le(i64),
        put_f32_le(f32),
        put_f64_le(f64),
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0xAB);
        out.put_i8(-3);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(u64::MAX - 7);
        out.put_i64_le(-42);
        out.put_f64_le(1.5);
        let mut buf: &[u8] = &out;
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_i8(), -3);
        assert_eq!(buf.get_u16_le(), 0xBEEF);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), u64::MAX - 7);
        assert_eq!(buf.get_i64_le(), -42);
        assert_eq!(buf.get_f64_le(), 1.5);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u32_le();
    }
}
