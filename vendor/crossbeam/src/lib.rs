//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the [`channel`] module surface `mind-net`'s TCP driver uses,
//! implemented over `std::sync::mpsc`. Multi-producer (cloneable `Sender`),
//! single-consumer, with blocking, timeout, and non-blocking receives.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPSC channels with crossbeam's API shape.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        inner: Inner<T>,
    }

    enum Inner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                Inner::Unbounded(s) => Inner::Unbounded(s.clone()),
                Inner::Bounded(s) => Inner::Bounded(s.clone()),
            };
            Sender { inner }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking on a full bounded channel. Errors only
        /// when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Inner::Unbounded(s) => s.send(msg),
                Inner::Bounded(s) => s.send(msg),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterates over received messages until the channel closes.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: Inner::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a channel that holds at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: Inner::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_multi_producer() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx.send(1).unwrap());
            std::thread::spawn(move || tx2.send(2).unwrap());
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn bounded_rendezvous_and_timeout() {
            let (tx, rx) = bounded(1);
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
