//! Offline stand-in for the `libfuzzer-sys` crate.
//!
//! The real crate links the libFuzzer runtime and drives the target with
//! coverage-guided mutation; this build environment has no registry or
//! network access, so [`fuzz_target!`] instead expands to a plain
//! `main()` with two modes:
//!
//! * `frame_decode <file>...` — replay corpus files through the target
//!   (same contract as `cargo fuzz run <target> <file>`), and
//! * `frame_decode --smoke <iters> <seed>` — a deterministic
//!   xorshift64*-driven generation loop, used by `scripts/fuzz_smoke.sh`
//!   as the CI smoke gate.
//!
//! A machine with the real `cargo-fuzz` toolchain swaps the `fuzz/`
//! path dependency for the registry crate (and adds `#![no_main]` to the
//! targets); the target bodies themselves are identical.

/// Defines the fuzz entry point plus the replay/smoke `main()`.
#[macro_export]
macro_rules! fuzz_target {
    (|$data:ident: &[u8]| $body:block) => {
        fn fuzz_one($data: &[u8]) $body

        fn main() -> std::process::ExitCode {
            let args: Vec<String> = std::env::args().skip(1).collect();
            if args.first().map(String::as_str) == Some("--smoke") {
                let iters: u64 = args
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(20_000);
                let seed: u64 = args
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0x4D49_4E44); // "MIND"
                $crate::smoke(iters, seed, fuzz_one);
                return std::process::ExitCode::SUCCESS;
            }
            let mut replayed = 0usize;
            for path in &args {
                match std::fs::read(path) {
                    Ok(data) => {
                        fuzz_one(&data);
                        replayed += 1;
                    }
                    Err(e) => {
                        eprintln!("fuzz: cannot read {path}: {e}");
                        return std::process::ExitCode::FAILURE;
                    }
                }
            }
            println!("fuzz: replayed {replayed} corpus file(s)");
            std::process::ExitCode::SUCCESS
        }
    };
}

/// Deterministic smoke loop: feeds `iters` generated inputs to `target`.
///
/// Inputs are built from an xorshift64* stream as short sequences of
/// chunks biased toward the frame codec's interesting shapes (valid
/// frames, bare/oversized length prefixes, truncated payloads, raw
/// garbage) so the loop exercises every decode branch, not just the
/// "garbage prefix" one. Same `(iters, seed)` ⇒ same byte streams.
pub fn smoke(iters: u64, seed: u64, target: fn(&[u8])) {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64* — tiny, seedable, good enough for input shaping.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut buf = Vec::with_capacity(1024);
    for _ in 0..iters {
        buf.clear();
        let chunks = 1 + next() % 4;
        for _ in 0..chunks {
            match next() % 8 {
                // Valid frame: correct length prefix + payload.
                0..=3 => {
                    let len = (next() % 200) as usize;
                    buf.extend_from_slice(&(len as u32).to_le_bytes());
                    for _ in 0..len {
                        buf.push(next() as u8);
                    }
                }
                // Length prefix with a truncated (or absent) payload.
                4 => {
                    let claim = (next() % 256) as u32;
                    buf.extend_from_slice(&claim.to_le_bytes());
                    let short = (next() % (u64::from(claim) + 1)) as usize;
                    for _ in 0..short.saturating_sub(1) {
                        buf.push(next() as u8);
                    }
                }
                // Oversized length prefix (beyond the 64 MiB cap).
                5 => {
                    let huge = 0x0400_0001_u32 | (next() as u32 & 0xF000_0000);
                    buf.extend_from_slice(&huge.to_le_bytes());
                }
                // Raw garbage, including partial prefixes.
                _ => {
                    let len = (next() % 16) as usize;
                    for _ in 0..len {
                        buf.push(next() as u8);
                    }
                }
            }
        }
        target(&buf);
    }
    println!("fuzz: smoke ok — {iters} generated inputs, seed {seed:#x}");
}
