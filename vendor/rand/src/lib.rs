//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Implements exactly what this workspace uses: deterministic seeded
//! generators ([`rngs::StdRng`], [`rngs::SmallRng`] — both xoshiro256++),
//! [`Rng::random_range`] over integer and float ranges, [`Rng::random`],
//! [`Rng::random_bool`], and the slice helpers in [`seq`]. There is
//! deliberately **no** entropy-based constructor: every generator must be
//! seeded, which is also enforced by the workspace lint wall.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let raw = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&raw[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed. No entropy-based constructors
/// exist in this stand-in: determinism is the whole point.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a 64-bit seed (splitmix64).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for b in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let raw = z.to_le_bytes();
            b.copy_from_slice(&raw[..b.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly from raw bits (the `StandardUniform`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$method() as $ty
            }
        })*
    };
}

standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    sample_below(rng, (self.end - self.start) as u64) as $ty + self.start
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    sample_below(rng, span + 1) as $ty + lo
                }
            }
        )*
    };
}

range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    self.start.wrapping_add(sample_below(rng, span) as $ty)
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo.wrapping_add(sample_below(rng, span + 1) as $ty)
                }
            }
        )*
    };
}

range_int!(i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = <$ty as Standard>::sample(rng);
                    self.start + unit * (self.end - self.start)
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample empty range");
                    let unit = <$ty as Standard>::sample(rng);
                    lo + unit * (hi - lo)
                }
            }
        )*
    };
}

range_float!(f32, f64);

/// Uniform value in `[0, bound)` via Lemire's widening-multiply method
/// (bias < 2^-64; `bound = 0` means the full 64-bit range).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (full integer range, `[0,1)` for floats, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics when the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0,1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.random();
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Seeded pseudo-random generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ core shared by [`StdRng`] and [`SmallRng`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_seed_bytes(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(raw);
            }
            // An all-zero state is a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Xoshiro256 { s }
        }

        fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }

    macro_rules! seeded_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Debug, Clone, PartialEq, Eq)]
            pub struct $name {
                core: Xoshiro256,
            }

            impl RngCore for $name {
                fn next_u32(&mut self) -> u32 {
                    (self.core.next() >> 32) as u32
                }
                fn next_u64(&mut self) -> u64 {
                    self.core.next()
                }
            }

            impl SeedableRng for $name {
                type Seed = [u8; 32];
                fn from_seed(seed: [u8; 32]) -> Self {
                    $name { core: Xoshiro256::from_seed_bytes(seed) }
                }
            }
        };
    }

    seeded_rng! {
        /// The workspace's default seeded generator.
        StdRng
    }
    seeded_rng! {
        /// A small-state generator; here identical to [`StdRng`].
        SmallRng
    }
}

pub mod seq {
    //! Random selection and permutation over slices.

    use super::{Rng, RngCore};

    /// Uniform selection from indexable collections.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// Picks one element uniformly; `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }

    /// In-place random permutation.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.random_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0u8..=64);
            assert!(w <= 64);
            let f = rng.random_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
            let s = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        // Must not overflow or hang.
        let _: u64 = rng.random_range(0..=u64::MAX);
        let _: u32 = rng.random_range(0..=u32::MAX);
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "unfair coin: {heads}/2000");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.as_slice().choose(&mut rng).unwrap()));
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle left order intact");
    }

    #[test]
    fn distribution_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((700..1300).contains(&b), "bucket {i} skewed: {b}");
        }
    }
}
