//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's ergonomics: `lock()`
//! returns the guard directly (no poison `Result`). A poisoned std lock —
//! only possible after a panic while holding the guard — is recovered by
//! taking the inner value, which matches parking_lot's no-poisoning design.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, LockResult, TryLockError};

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

fn recover<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.inner.lock())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.inner.read())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.inner.write())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must recover after a panicking holder");
    }
}
