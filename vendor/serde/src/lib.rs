//! Offline stand-in for the `serde` crate.
//!
//! A faithful subset of serde's data model: the [`Serialize`] /
//! [`Deserialize`] traits, the 29-method [`Serializer`] and
//! [`Deserializer`] driver traits, visitors, seeds, and access traits for
//! sequences, maps and enums — everything `mind-net`'s compact wire codec
//! and the workspace's `#[derive]`d types exercise. Not supported (and not
//! used anywhere in this workspace): `#[serde(...)]` attributes, 128-bit
//! integers, and self-describing formats.

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
