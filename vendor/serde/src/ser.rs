//! Serialization half of the data model.

use std::fmt::Display;

/// Errors produced by a [`Serializer`].
pub trait Error: Sized + std::error::Error {
    /// Builds an error from any message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can drive a [`Serializer`].
pub trait Serialize {
    /// Feeds `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format consuming the serde data model.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Failure type.
    type Error: Error;

    /// Compound state for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes opaque bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct like `struct Marker;`.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a dataless enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct like `struct Id(u64);`.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a single-field enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a fixed-length heterogeneous tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct with named fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// `true` when the format is text-based.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Element-by-element state for [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Matches the serializer's `Ok`.
    type Ok;
    /// Matches the serializer's `Error`.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Element-by-element state for [`Serializer::serialize_tuple`].
pub trait SerializeTuple {
    /// Matches the serializer's `Ok`.
    type Ok;
    /// Matches the serializer's `Error`.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Field-by-field state for [`Serializer::serialize_tuple_struct`].
pub trait SerializeTupleStruct {
    /// Matches the serializer's `Ok`.
    type Ok;
    /// Matches the serializer's `Error`.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Field-by-field state for [`Serializer::serialize_tuple_variant`].
pub trait SerializeTupleVariant {
    /// Matches the serializer's `Ok`.
    type Ok;
    /// Matches the serializer's `Error`.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Entry-by-entry state for [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Matches the serializer's `Ok`.
    type Ok;
    /// Matches the serializer's `Error`.
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serializes a key-value pair.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Field-by-field state for [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Matches the serializer's `Ok`.
    type Ok;
    /// Matches the serializer's `Error`.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Field-by-field state for [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    /// Matches the serializer's `Ok`.
    type Ok;
    /// Matches the serializer's `Error`.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ------------------------------------------------------------- std impls

macro_rules! serialize_primitive {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        })*
    };
}

serialize_primitive! {
    bool => serialize_bool,
    i8 => serialize_i8, i16 => serialize_i16, i32 => serialize_i32, i64 => serialize_i64,
    u8 => serialize_u8, u16 => serialize_u16, u32 => serialize_u32, u64 => serialize_u64,
    f32 => serialize_f32, f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

// Transparent shared-pointer impls, as upstream serde's `rc` feature:
// the pointee is serialized in place, so sharing never changes the wire
// format (and deserializing yields an unshared copy).
impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        SerializeSeq::serialize_element(&mut seq, &item)?;
    }
    SerializeSeq::end(seq)
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            SerializeTuple::serialize_element(&mut tup, item)?;
        }
        SerializeTuple::end(tup)
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

fn serialize_map_iter<'a, S, K, V, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
{
    let mut map = serializer.serialize_map(Some(len))?;
    for (k, v) in iter {
        SerializeMap::serialize_entry(&mut map, k, v)?;
    }
    SerializeMap::end(map)
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize
    for std::collections::HashMap<K, V>
{
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self)
    }
}

macro_rules! serialize_tuple_impl {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let len = [$(stringify!($name)),+].len();
                let mut tup = serializer.serialize_tuple(len)?;
                $(SerializeTuple::serialize_element(&mut tup, &self.$idx)?;)+
                SerializeTuple::end(tup)
            }
        })*
    };
}

serialize_tuple_impl! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
