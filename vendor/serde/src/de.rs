//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Errors produced by a [`Deserializer`].
pub trait Error: Sized + std::error::Error {
    /// Builds an error from any message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Drives `deserializer` to build `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful variant of [`Deserialize`].
pub trait DeserializeSeed<'de>: Sized {
    /// The produced type.
    type Value;
    /// Drives `deserializer` using the seed's state.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A data format producing the serde data model.
pub trait Deserializer<'de>: Sized {
    /// Failure type.
    type Error: Error;

    /// Self-describing formats dispatch on the input; binary formats error.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints an `i128`.
    fn deserialize_i128<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Self::Error> {
        Err(Error::custom("i128 is not supported"))
    }
    /// Hints a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints a `u128`.
    fn deserialize_u128<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Self::Error> {
        Err(Error::custom("u128 is not supported"))
    }
    /// Hints an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints a borrowed string.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints borrowed bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hints a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hints a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints a fixed-length tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hints a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hints a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints a struct with named fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hints an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hints a field or variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hints a value to skip.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// `true` when the format is text-based.
    fn is_human_readable(&self) -> bool {
        true
    }
}

macro_rules! visit_default {
    ($($(#[$doc:meta])* fn $name:ident($ty:ty);)*) => {
        $(
            $(#[$doc])*
            fn $name<E: Error>(self, v: $ty) -> Result<Self::Value, E> {
                let _ = v;
                Err(Error::custom(ExpectedBy(&self)))
            }
        )*
    };
}

/// Receives whichever shape the [`Deserializer`] found. Every method has a
/// rejecting default; implementations override the shapes they accept.
pub trait Visitor<'de>: Sized {
    /// The produced type.
    type Value;

    /// Describes what this visitor accepts, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    visit_default! {
        /// Visits a `bool`.
        fn visit_bool(bool);
        /// Visits an `i8`.
        fn visit_i8(i8);
        /// Visits an `i16`.
        fn visit_i16(i16);
        /// Visits an `i32`.
        fn visit_i32(i32);
        /// Visits an `i64`.
        fn visit_i64(i64);
        /// Visits a `u8`.
        fn visit_u8(u8);
        /// Visits a `u16`.
        fn visit_u16(u16);
        /// Visits a `u32`.
        fn visit_u32(u32);
        /// Visits a `u64`.
        fn visit_u64(u64);
        /// Visits an `f32`.
        fn visit_f32(f32);
        /// Visits an `f64`.
        fn visit_f64(f64);
        /// Visits a `char`.
        fn visit_char(char);
    }

    /// Visits a transient string slice.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(ExpectedBy(&self)))
    }

    /// Visits a string borrowed from the input.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Visits an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visits transient bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(ExpectedBy(&self)))
    }

    /// Visits bytes borrowed from the input.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    /// Visits an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Visits `Option::None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom(ExpectedBy(&self)))
    }

    /// Visits `Option::Some`; the content follows.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom(ExpectedBy(&self)))
    }

    /// Visits `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom(ExpectedBy(&self)))
    }

    /// Visits a newtype struct; the content follows.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom(ExpectedBy(&self)))
    }

    /// Visits a sequence of elements.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::custom(ExpectedBy(&self)))
    }

    /// Visits a map of entries.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::custom(ExpectedBy(&self)))
    }

    /// Visits an enum variant.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(Error::custom(ExpectedBy(&self)))
    }
}

/// Renders "invalid type: expected <visitor.expecting()>".
struct ExpectedBy<'a, V>(&'a V);

impl<'de, V: Visitor<'de>> Display for ExpectedBy<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid type: expected ")?;
        self.0.expecting(f)
    }
}

/// Streams the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Failure type.
    type Error: Error;

    /// Produces the next element through `seed`, or `None` at the end.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Produces the next element of a [`Deserialize`] type.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Streams the entries of a map.
pub trait MapAccess<'de> {
    /// Failure type.
    type Error: Error;

    /// Produces the next key through `seed`, or `None` at the end.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Produces the value paired with the last key.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Produces the next key of a [`Deserialize`] type.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Produces the next value of a [`Deserialize`] type.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Produces the next entry of [`Deserialize`] types.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry point for deserializing an enum: identifies the variant.
pub trait EnumAccess<'de>: Sized {
    /// Failure type.
    type Error: Error;
    /// Accessor for the variant's content.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Reads the variant identifier through `seed`.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Reads the variant identifier as a [`Deserialize`] type.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Accessor for the content of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Failure type.
    type Error: Error;

    /// Consumes a dataless variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Consumes a single-field variant through `seed`.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Consumes a single-field variant of a [`Deserialize`] type.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Consumes a tuple variant with `len` fields.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Consumes a struct variant with the given fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a plain value into a [`Deserializer`] over it.
pub trait IntoDeserializer<'de, E: Error = value::Error> {
    /// The resulting deserializer.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Wraps `self`.
    fn into_deserializer(self) -> Self::Deserializer;
}

pub mod value {
    //! Deserializers over plain values already in memory.

    use super::{Deserializer, IntoDeserializer, Visitor};
    use std::fmt;
    use std::marker::PhantomData;

    /// A plain string error for value deserializers.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    impl super::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    macro_rules! forward_to_any {
        ($($method:ident,)*) => {
            $(
                fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
            )*
        };
    }

    macro_rules! primitive_deserializer {
        ($($(#[$doc:meta])* $name:ident($ty:ty) => $visit:ident,)*) => {
            $(
                $(#[$doc])*
                pub struct $name<E> {
                    value: $ty,
                    marker: PhantomData<E>,
                }

                impl<'de, E: super::Error> Deserializer<'de> for $name<E> {
                    type Error = E;

                    fn deserialize_any<V: Visitor<'de>>(
                        self,
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        visitor.$visit(self.value)
                    }

                    forward_to_any! {
                        deserialize_bool, deserialize_i8, deserialize_i16,
                        deserialize_i32, deserialize_i64, deserialize_u8,
                        deserialize_u16, deserialize_u32, deserialize_u64,
                        deserialize_f32, deserialize_f64, deserialize_char,
                        deserialize_str, deserialize_string, deserialize_bytes,
                        deserialize_byte_buf, deserialize_option, deserialize_unit,
                        deserialize_seq, deserialize_map, deserialize_identifier,
                        deserialize_ignored_any,
                    }

                    fn deserialize_unit_struct<V: Visitor<'de>>(
                        self,
                        _name: &'static str,
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        self.deserialize_any(visitor)
                    }

                    fn deserialize_newtype_struct<V: Visitor<'de>>(
                        self,
                        _name: &'static str,
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        self.deserialize_any(visitor)
                    }

                    fn deserialize_tuple<V: Visitor<'de>>(
                        self,
                        _len: usize,
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        self.deserialize_any(visitor)
                    }

                    fn deserialize_tuple_struct<V: Visitor<'de>>(
                        self,
                        _name: &'static str,
                        _len: usize,
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        self.deserialize_any(visitor)
                    }

                    fn deserialize_struct<V: Visitor<'de>>(
                        self,
                        _name: &'static str,
                        _fields: &'static [&'static str],
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        self.deserialize_any(visitor)
                    }

                    fn deserialize_enum<V: Visitor<'de>>(
                        self,
                        _name: &'static str,
                        _variants: &'static [&'static str],
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        self.deserialize_any(visitor)
                    }
                }

                impl<'de, E: super::Error> IntoDeserializer<'de, E> for $ty {
                    type Deserializer = $name<E>;
                    fn into_deserializer(self) -> $name<E> {
                        $name { value: self, marker: PhantomData }
                    }
                }
            )*
        };
    }

    primitive_deserializer! {
        /// Deserializer over an in-memory `u8`.
        U8Deserializer(u8) => visit_u8,
        /// Deserializer over an in-memory `u16`.
        U16Deserializer(u16) => visit_u16,
        /// Deserializer over an in-memory `u32`.
        U32Deserializer(u32) => visit_u32,
        /// Deserializer over an in-memory `u64`.
        U64Deserializer(u64) => visit_u64,
    }
}

// ------------------------------------------------------------- std impls

macro_rules! deserialize_primitive {
    ($($ty:ty, $method:ident, $visit:ident, $expect:literal;)*) => {
        $(impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimitiveVisitor;
                impl<'de> Visitor<'de> for PrimitiveVisitor {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expect)
                    }
                    fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$method(PrimitiveVisitor)
            }
        })*
    };
}

deserialize_primitive! {
    bool, deserialize_bool, visit_bool, "a bool";
    i8, deserialize_i8, visit_i8, "an i8";
    i16, deserialize_i16, visit_i16, "an i16";
    i32, deserialize_i32, visit_i32, "an i32";
    i64, deserialize_i64, visit_i64, "an i64";
    u8, deserialize_u8, visit_u8, "a u8";
    u16, deserialize_u16, visit_u16, "a u16";
    u32, deserialize_u32, visit_u32, "a u32";
    u64, deserialize_u64, visit_u64, "a u64";
    f32, deserialize_f32, visit_f32, "an f32";
    f64, deserialize_f64, visit_f64, "an f64";
    char, deserialize_char, visit_char, "a char";
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UsizeVisitor;
        impl<'de> Visitor<'de> for UsizeVisitor {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a usize")
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| Error::custom("usize overflow"))
            }
        }
        deserializer.deserialize_u64(UsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IsizeVisitor;
        impl<'de> Visitor<'de> for IsizeVisitor {
            type Value = isize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an isize")
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| Error::custom("isize overflow"))
            }
        }
        deserializer.deserialize_i64(IsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

// Transparent shared-pointer impls, as upstream serde's `rc` feature.
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::rc::Rc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::rc::Rc::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

macro_rules! deserialize_set {
    ($($name:ident<$bound:ident $(+ $extra:ident)*>),* $(,)?) => {
        $(impl<'de, T: Deserialize<'de> + $bound $(+ $extra)*> Deserialize<'de>
            for std::collections::$name<T>
        {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct SetVisitor<T>(PhantomData<T>);
                impl<'de, T: Deserialize<'de> + $bound $(+ $extra)*> Visitor<'de> for SetVisitor<T> {
                    type Value = std::collections::$name<T>;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a sequence")
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        let mut out = std::collections::$name::new();
                        while let Some(item) = seq.next_element()? {
                            out.insert(item);
                        }
                        Ok(out)
                    }
                }
                deserializer.deserialize_seq(SetVisitor(PhantomData))
            }
        })*
    };
}

use std::hash::Hash;
deserialize_set!(BTreeSet<Ord>, HashSet<Eq + Hash>);

macro_rules! deserialize_map_impl {
    ($($name:ident<$bound:ident $(+ $extra:ident)*>),* $(,)?) => {
        $(impl<'de, K: Deserialize<'de> + $bound $(+ $extra)*, V: Deserialize<'de>>
            Deserialize<'de> for std::collections::$name<K, V>
        {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct MapVisitor<K, V>(PhantomData<(K, V)>);
                impl<'de, K: Deserialize<'de> + $bound $(+ $extra)*, V: Deserialize<'de>>
                    Visitor<'de> for MapVisitor<K, V>
                {
                    type Value = std::collections::$name<K, V>;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a map")
                    }
                    fn visit_map<A: MapAccess<'de>>(
                        self,
                        mut map: A,
                    ) -> Result<Self::Value, A::Error> {
                        let mut out = std::collections::$name::new();
                        while let Some((k, v)) = map.next_entry()? {
                            out.insert(k, v);
                        }
                        Ok(out)
                    }
                }
                deserializer.deserialize_map(MapVisitor(PhantomData))
            }
        })*
    };
}

deserialize_map_impl!(BTreeMap<Ord>, HashMap<Eq + Hash>);

macro_rules! deserialize_tuple_impl {
    ($(($($name:ident),+))*) => {
        $(impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a tuple")
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<Acc: SeqAccess<'de>>(
                        self,
                        mut seq: Acc,
                    ) -> Result<Self::Value, Acc::Error> {
                        $(
                            let $name = match seq.next_element()? {
                                Some(v) => v,
                                None => return Err(Error::custom("tuple too short")),
                            };
                        )+
                        Ok(($($name,)+))
                    }
                }
                let len = [$(stringify!($name)),+].len();
                deserializer.deserialize_tuple(len, TupleVisitor(PhantomData))
            }
        })*
    };
}

deserialize_tuple_impl! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut out = Vec::with_capacity(N);
                for _ in 0..N {
                    match seq.next_element()? {
                        Some(v) => out.push(v),
                        None => return Err(Error::custom("array too short")),
                    }
                }
                out.try_into()
                    .map_err(|_| Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, ArrayVisitor::<T, N>(PhantomData))
    }
}
