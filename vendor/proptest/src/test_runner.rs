//! Deterministic case runner: config, RNG, and the failure type that
//! `prop_assert!` returns from test closures.

use crate::strategy::Strategy;

/// Per-block configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert!`-style failure: aborts the whole test.
    Fail(String),
    /// Input rejected (e.g. a filter); the case is skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Deterministic xoshiro256++ generator. Seeded from the test name so every
/// run of a given test explores the same inputs (there is no shrinking, so
/// reproducibility is the debugging story).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x6A09_E667_F3BC_C908; // never all-zero
        }
        TestRng { s }
    }

    /// Seed derived from the test's name (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        Self::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        // Widening-multiply range reduction; bias is < 2^-64 per draw,
        // irrelevant for test-input generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    pub fn usize_between(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as usize
    }
}

/// Drives `cases` deterministic inputs through the test closure; panics on
/// the first `Fail` so the standard test harness reports it.
pub fn run_cases<S: Strategy>(
    cfg: &ProptestConfig,
    name: &str,
    strat: S,
    mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::deterministic(name);
    let mut rejected = 0u32;
    for case in 0..cfg.cases {
        let value = strat.generate(&mut rng);
        match test(value) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > cfg.cases * 4 {
                    panic!("proptest `{name}`: too many rejected cases ({rejected})");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {case}/{} (deterministic seed from test \
                     name; re-run reproduces it): {msg}",
                    cfg.cases
                );
            }
        }
    }
}
