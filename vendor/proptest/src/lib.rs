//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`strategy::Strategy`]
//! trait with `prop_map`/`boxed`, strategies for integer ranges, tuples,
//! `&str` character-class regexes, collections, options and samples, the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros,
//! and a deterministic [`test_runner::TestRng`] seeded from the test name.
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! seeds: a failing case reports its case number and input-generation seed.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(...)` etc. work after a
    /// glob import of the prelude, as in real proptest.
    pub mod prop {
        pub use crate::{collection, option, sample, strategy};
    }
}

/// `prop_oneof![a, b, c]` — pick one arm uniformly at random per case.
/// (The weighted `w => strat` form is not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)` — fail the
/// current case (returns `Err(TestCaseError)` from the test closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__lhs, __rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *__lhs == *__rhs,
            "assertion failed: `{:?} == {:?}`",
            __lhs,
            __rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__lhs, __rhs) = (&$a, &$b);
        $crate::prop_assert!(*__lhs == *__rhs, $($fmt)+);
    }};
}

/// The `proptest! { ... }` block: wraps each `fn name(x in strat, y: ty)`
/// into a zero-argument test running `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr] $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! { [$cfg] [$name] [$body] [] [] $($params)* }
        }
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All params consumed: run the cases.
    ([$cfg:expr] [$name:ident] [$body:block] [$($p:ident)*] [$([$s:expr])*]) => {
        $crate::test_runner::run_cases(
            &$cfg,
            stringify!($name),
            ($($s,)*),
            |($($p,)*)| {
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            },
        )
    };
    // `x in strategy, <rest>`
    ([$cfg:expr] [$name:ident] [$body:block] [$($p:ident)*] [$($s:tt)*] $pn:ident in $sn:expr, $($rest:tt)*) => {
        $crate::__proptest_case! { [$cfg] [$name] [$body] [$($p)* $pn] [$($s)* [$sn]] $($rest)* }
    };
    // `x in strategy` (final, no trailing comma)
    ([$cfg:expr] [$name:ident] [$body:block] [$($p:ident)*] [$($s:tt)*] $pn:ident in $sn:expr) => {
        $crate::__proptest_case! { [$cfg] [$name] [$body] [$($p)* $pn] [$($s)* [$sn]] }
    };
    // `x: Type, <rest>` — shorthand for `x in any::<Type>()`
    ([$cfg:expr] [$name:ident] [$body:block] [$($p:ident)*] [$($s:tt)*] $pn:ident : $tn:ty, $($rest:tt)*) => {
        $crate::__proptest_case! { [$cfg] [$name] [$body] [$($p)* $pn] [$($s)* [$crate::arbitrary::any::<$tn>()]] $($rest)* }
    };
    // `x: Type` (final)
    ([$cfg:expr] [$name:ident] [$body:block] [$($p:ident)*] [$($s:tt)*] $pn:ident : $tn:ty) => {
        $crate::__proptest_case! { [$cfg] [$name] [$body] [$($p)* $pn] [$($s)* [$crate::arbitrary::any::<$tn>()]] }
    };
}
