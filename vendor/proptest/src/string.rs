//! `&str` as a strategy: a tiny regex subset generating matching strings.
//!
//! Supported syntax — enough for patterns like `"[a-z]{1,12}"`:
//! literal characters, character classes `[a-z0-9_]` (ranges and single
//! chars), and repetition `{n}` / `{m,n}` on the preceding atom. Anything
//! else panics at strategy-construction time.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Flattened list of allowed characters.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Piece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in regex strategy {pat:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "inverted range in regex strategy {pat:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in regex strategy {pat:?}");
                i = close + 1;
                Atom::Class(set)
            }
            c @ ('*' | '+' | '?' | '(' | ')' | '|' | '.' | '^' | '$' | '\\') => {
                panic!("regex feature {c:?} not supported by the vendored proptest ({pat:?})")
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {n} or {m,n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in regex strategy {pat:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            let parse = |s: &str| -> usize {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repetition {body:?} in {pat:?}"))
            };
            match body.split_once(',') {
                Some((m, n)) => (parse(m), parse(n)),
                None => (parse(&body), parse(&body)),
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in regex strategy {pat:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Parsing per case keeps the impl allocation-free at rest; these
        // patterns are a handful of characters, so the cost is noise.
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = rng.usize_between(piece.min, piece.max);
            for _ in 0..n {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => {
                        let k = rng.below(set.len() as u64) as usize;
                        out.push(set[k]);
                    }
                }
            }
        }
        out
    }
}
