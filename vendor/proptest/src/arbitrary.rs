//! `any::<T>()` — default strategies for primitives and `sample::Index`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
