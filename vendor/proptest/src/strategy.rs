//! The [`Strategy`] trait and core combinators (`prop_map`, `boxed`,
//! unions, `Just`, integer ranges, tuples).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
/// Object-safe so strategies can be boxed for `prop_oneof!`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_oneof![...]`: picks one boxed arm uniformly per case.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ----------------------------------------------------- integer ranges

/// Offset-maps a signed/unsigned primitive onto u128 so one uniform
/// sampler covers every integer type.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                // span fits in u64 for every 64-bit-or-smaller primitive
                // except the full u128 width, which no caller uses.
                let off = rng.below(span as u64) as i128;
                (lo + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full-width inclusive range: any u64 value is valid.
                    return rng.next_u64() as $t;
                }
                let off = rng.below(span as u64) as i128;
                (lo + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

// -------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($($s:ident => $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($({ let $v = $s.generate(rng); $v },)+)
            }
        }
    };
}

tuple_strategy!(A => a);
tuple_strategy!(A => a, B => b);
tuple_strategy!(A => a, B => b, C => c);
tuple_strategy!(A => a, B => b, C => c, D => d);
tuple_strategy!(A => a, B => b, C => c, D => d, E => e);
tuple_strategy!(A => a, B => b, C => c, D => d, E => e, F => f);
tuple_strategy!(A => a, B => b, C => c, D => d, E => e, F => f, G => g);
tuple_strategy!(A => a, B => b, C => c, D => d, E => e, F => f, G => g, H => h);
