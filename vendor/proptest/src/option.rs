//! `option::of(strategy)` — `Some` most of the time, `None` occasionally.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Matches real proptest's default: None with probability 1/5.
        if rng.below(5) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
