//! `sample::Index` (a position into any-length collections) and
//! `sample::select` (pick one of a fixed set).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An abstract index: a raw u64 mapped onto `[0, len)` on demand, so one
/// generated value can index collections of any size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Self {
        Index { raw }
    }

    /// Maps this index into `[0, len)`. Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot Index::index into an empty collection");
        ((u128::from(self.raw) * len as u128) >> 64) as usize
    }
}

/// Uniformly selects one of the given values per case.
pub struct Select<T> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.choices.len() as u64) as usize;
        self.choices[k].clone()
    }
}

pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(
        !choices.is_empty(),
        "sample::select needs at least one choice"
    );
    Select { choices }
}
