#!/usr/bin/env bash
# Runs the store and histogram unit suites under Miri (undefined-behavior
# interpreter). These two crates own the repo's densest pointer/index
# arithmetic: the columnar SoA k-d tree (subtree ranges over parallel
# column vectors) and the flat cut-tree layout (preorder index math).
#
# Skip-list: Miri executes 50-200x slower than native, so the large
# randomized/property workloads are excluded by name. Everything skipped
# here still runs natively in the build-and-test job; Miri's job is UB
# detection on the remaining (still branch-complete) small tests.
#
#   prop_                                — proptest suites: hundreds of cases each
#   random_queries_match_brute_force     — 2000-point randomized k-d workload
#   absorb_matches_fresh_build           — 1500-point rebuild comparison
#   query_behind_big_batch_pays_for_it   — 5000-insert DAC batching scenario
#   range_sees_buffered_and_rebuilt_records — 2000-insert rebuild threshold walk
#   approx_bytes_incremental_matches_recompute — 1000-insert byte accounting
#   balanced_histogram_tracks_points     — 1000-point balanced-cut build
#   iteration_is_insertion_order_independent — ~2200-insert replay check
set -euo pipefail
cd "$(dirname "$0")/.."

SKIPS=(
    --skip prop_
    --skip random_queries_match_brute_force
    --skip absorb_matches_fresh_build
    --skip query_behind_big_batch_pays_for_it
    --skip range_sees_buffered_and_rebuilt_records
    --skip approx_bytes_incremental_matches_recompute
    --skip balanced_histogram_tracks_points
    --skip iteration_is_insertion_order_independent
)

for pkg in mind-store mind-histogram; do
    echo "miri: $pkg --lib"
    cargo +nightly miri test -p "$pkg" --lib -- "${SKIPS[@]}"
done
