#!/usr/bin/env bash
# TCP runtime smoke gate: a real 4-process mind-node cluster on localhost,
# hammered by mind-loadgen over the control protocol. Passes only if the
# load generator reports nonzero sustained throughput, exact ops
# conservation, and a clean fleet audit, and every node process exits 0
# after the control-protocol shutdown (no signals involved).
#
#   ./scripts/tcp_smoke.sh [inserts] [min_rate]
#
# Defaults are sized for CI (50k rows, any nonzero rate); run with
# `100000 50000` to reproduce the ≥50k inserts/s acceptance check on a
# quiet machine.
set -euo pipefail
cd "$(dirname "$0")/.."

INSERTS="${1:-50000}"
MIN_RATE="${2:-1}"
PORT_BASE="${TCP_SMOKE_PORT_BASE:-47610}"
WORK="$(mktemp -d)"
SPEC="$WORK/cluster.txt"
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

cargo build --quiet --release -p mind-runtime --bins

{
    echo "# tcp_smoke cluster: id node_addr control_addr"
    for i in 0 1 2 3; do
        echo "$i 127.0.0.1:$((PORT_BASE + 2 * i)) 127.0.0.1:$((PORT_BASE + 2 * i + 1))"
    done
} > "$SPEC"

for i in 0 1 2 3; do
    ./target/release/mind-node --id "$i" --cluster "$SPEC" \
        > "$WORK/node$i.log" 2>&1 &
    PIDS+=($!)
done

echo "tcp-smoke: 4 nodes up, loading $INSERTS rows (min rate $MIN_RATE/s)"
timeout 120 ./target/release/mind-loadgen --cluster "$SPEC" \
    --inserts "$INSERTS" --batch 64 --queries 16 \
    --min-insert-rate "$MIN_RATE" --shutdown | tee "$WORK/report.txt"

grep -q "^conserved=true$" "$WORK/report.txt"
grep -q "^audit_clean=true$" "$WORK/report.txt"

# The shutdown was sent over the control protocol; every node must exit 0
# on its own (SIGTERM-free shutdown proof).
for i in 0 1 2 3; do
    if ! wait "${PIDS[$i]}"; then
        echo "tcp-smoke: node $i exited nonzero" >&2
        cat "$WORK/node$i.log" >&2
        exit 1
    fi
done
PIDS=()
echo "tcp-smoke: ok"
