#!/usr/bin/env bash
# Perf gates: measure the flat-vs-naive ratios for the store and route
# planes and diff them against the committed baselines (BENCH_store.json,
# BENCH_route.json).
#
# Each gate fails when a gated speedup drops below its hard 2x floor or
# regresses more than 20 % against its baseline, or when a build-cost
# ratio drifts past its ceiling. Ratios — not absolute nanoseconds — are
# compared, so the gates are portable across machines.
#
# Refresh a baseline after an intentional perf change with:
#   cargo run --release -p mind-bench --bin bench_store -- --write BENCH_store.json
#   cargo run --release -p mind-bench --bin bench_route -- --write BENCH_route.json
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p mind-bench --bin bench_store --bin bench_route

status=0
./target/release/bench_store --check BENCH_store.json || status=1
./target/release/bench_route --check BENCH_route.json || status=1
exit "$status"
