#!/usr/bin/env bash
# Perf gates: measure the flat-vs-naive ratios for the store and route
# planes plus the ingest fast path, and diff them against the committed
# baselines (BENCH_store.json, BENCH_route.json, BENCH_ingest.json), then
# re-run the churn-world scale sweep against BENCH_sim.json.
#
# Each gate fails when a gated speedup drops below its hard floor (2x on
# the store/route planes, 3x on batched-vs-single ingest) or regresses
# more than its tolerance against its baseline, or when a cost ratio
# drifts past its ceiling. Ratios — not absolute nanoseconds — are
# compared, so the gates are portable across machines. (The sharded-scan
# strict-improvement floor additionally requires >1 core; see
# bench_ingest's module docs.)
#
# The sim gate (bench_sim --check) replays the 100/1k/10k-node churn
# worlds: wall-clock metrics are banded like the other gates, but the
# deterministic counters (events, pending peak, rows) must not regress
# past their ceilings, and two floors are hard — the 1k world must finish
# its sim-hour inside the fixed budget and the 10k world must complete.
#
# Refresh a baseline after an intentional perf change with:
#   cargo run --release -p mind-bench --bin bench_store -- --write BENCH_store.json
#   cargo run --release -p mind-bench --bin bench_route -- --write BENCH_route.json
#   cargo run --release -p mind-bench --bin bench_ingest -- --write BENCH_ingest.json
#   cargo run --release -p mind-bench --bin bench_sim -- --write BENCH_sim.json
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p mind-bench --bin bench_store --bin bench_route --bin bench_ingest --bin bench_sim

status=0
./target/release/bench_store --check BENCH_store.json || status=1
./target/release/bench_route --check BENCH_route.json || status=1
./target/release/bench_ingest --check BENCH_ingest.json || status=1
./target/release/bench_sim --check BENCH_sim.json || status=1
exit "$status"
