#!/usr/bin/env bash
# Store perf gate: measure the columnar-vs-naive ratios and diff them
# against the committed baseline (BENCH_store.json).
#
# The gate fails when the range/count speedup drops below the hard 2x
# floor or regresses more than 20 % against the baseline, or when the
# columnar build drifts past ~1.2x the naive build. Ratios — not absolute
# nanoseconds — are compared, so the gate is portable across machines.
#
# Refresh the baseline after an intentional perf change with:
#   cargo run --release -p mind-bench --bin bench_store -- --write BENCH_store.json
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p mind-bench --bin bench_store
exec ./target/release/bench_store --check BENCH_store.json
