#!/usr/bin/env bash
# Fuzz smoke gate: for each target, replay the committed corpus, then run
# the deterministic generation loop (vendor/libfuzzer-sys stand-in, seeded
# xorshift64*) under a hard per-target timeout. Same iteration count +
# seed on every run, so a failure is always reproducible with the printed
# command line.
#
# Targets:
#   frame_decode — TCP frame codec round-trip invariant
#   store_range  — differential store backends (columnar k-d vs bit-sliced
#                  bitmap vs sharded subtrees vs brute force) on arbitrary
#                  records + rects
#   batch_decode — MindPayload codec: arbitrary bytes reject cleanly or
#                  decode to a payload whose re-encoding is a canonical
#                  fixed point with an exact wire_size (batched insert
#                  frames seeded in the corpus)
#   wire_decode  — full transport envelope (sender + OverlayMsg): reject
#                  cleanly or re-encode to a canonical fixed point, with
#                  an exact wire_size on any carried payload
#   cut_columns  — CutTree wire-column validation (from_columns):
#                  arbitrary bounds/axis/threshold columns reject cleanly
#                  or build a tree whose leaf memo, code walk, and point
#                  descent all agree
#
# A machine with the real cargo-fuzz toolchain runs the same targets with
#   cargo fuzz run <target>
# after swapping fuzz/Cargo.toml's libfuzzer-sys path dep for the registry
# crate.
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS="${FUZZ_SMOKE_ITERS:-200000}"
SEED="${FUZZ_SMOKE_SEED:-20260807}"
TIMEOUT_S="${FUZZ_SMOKE_TIMEOUT:-60}"

cargo build --quiet --release --manifest-path fuzz/Cargo.toml

for TARGET in frame_decode store_range batch_decode wire_decode cut_columns; do
    BIN="fuzz/target/release/$TARGET"

    echo "fuzz-smoke[$TARGET]: replaying committed corpus"
    "$BIN" fuzz/corpus/"$TARGET"/*

    echo "fuzz-smoke[$TARGET]: $ITERS generated inputs, seed $SEED, ${TIMEOUT_S}s cap"
    timeout "$TIMEOUT_S" "$BIN" --smoke "$ITERS" "$SEED"
done
