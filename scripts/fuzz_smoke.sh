#!/usr/bin/env bash
# Fuzz smoke gate: replay the committed corpus, then run the deterministic
# generation loop (vendor/libfuzzer-sys stand-in, seeded xorshift64*) under
# a hard 60-second timeout. Same iteration count + seed on every run, so a
# failure is always reproducible with the printed command line.
#
# A machine with the real cargo-fuzz toolchain runs the same target with
#   cargo fuzz run frame_decode
# after swapping fuzz/Cargo.toml's libfuzzer-sys path dep for the registry
# crate.
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS="${FUZZ_SMOKE_ITERS:-200000}"
SEED="${FUZZ_SMOKE_SEED:-20260807}"
TIMEOUT_S="${FUZZ_SMOKE_TIMEOUT:-60}"

cargo build --quiet --release --manifest-path fuzz/Cargo.toml
BIN=fuzz/target/release/frame_decode

echo "fuzz-smoke: replaying committed corpus"
"$BIN" fuzz/corpus/frame_decode/*

echo "fuzz-smoke: $ITERS generated inputs, seed $SEED, ${TIMEOUT_S}s cap"
timeout "$TIMEOUT_S" "$BIN" --smoke "$ITERS" "$SEED"
