//! On-line anomaly detection with standing queries (triggers).
//!
//! The paper's conclusion: *"If deployed within a backbone ISP on a
//! dedicated infrastructure, we believe MIND can be used as a component
//! of an on-line anomaly detection system."* This example wires that up:
//! instead of polling with periodic queries, the operator installs
//! *triggers* (footnote 1's extension, implemented in
//! `mind::core::trigger`) and receives an alert the moment a suspicious
//! aggregate is indexed anywhere in the backbone — attacks surface within
//! seconds of their first aggregation window.
//!
//! ```sh
//! cargo run --release --example online_detection
//! ```

use mind::core::Replication;
use mind::histogram::CutTree;
use mind::traffic::anomaly::{section5_anomalies, AnomalyKind};
use mind::traffic::schemas::{index1_record, index1_schema, FANOUT_BOUND};
use mind::traffic::{aggregate_window, TrafficConfig, TrafficGenerator};
use mind::types::node::SECONDS;
use mind::types::{HyperRect, NodeId};
use mind_core::{ClusterConfig, MindCluster};

const ABILENE: [&str; 11] = [
    "STTL", "SNVA", "LOSA", "DNVR", "KSCY", "HSTN", "CHIN", "IPLS", "ATLA", "WASH", "NYCM",
];

fn main() {
    let mut cfg = ClusterConfig::baseline(23);
    cfg.sites = mind::netsim::topology::abilene_sites();
    let mut cluster = MindCluster::new(cfg);
    let schema = index1_schema(1800);
    let cuts = CutTree::even(schema.bounds(), 9);
    cluster
        .create_index(NodeId(0), schema, cuts, Replication::Level(1))
        .unwrap();
    cluster.run_for(15 * SECONDS);

    // The NOC (node 6, Chicago) installs one standing query before any
    // traffic flows: "alert me on any aggregate with fanout > 1500".
    let noc = NodeId(6);
    let watch = HyperRect::new(vec![0, 0, 1500], vec![u32::MAX as u64, 1800, FANOUT_BOUND]);
    let tid = cluster
        .create_trigger(noc, "index-1", watch, vec![])
        .unwrap();
    cluster.run_for(15 * SECONDS);
    println!("standing query {tid} armed at {} (CHIN)\n", ABILENE[6]);

    // Stream 25 minutes of traffic with hidden attacks; after every
    // aggregation window, drain fresh alerts.
    let generator = TrafficGenerator::new(TrafficConfig {
        routers: 11,
        ..Default::default()
    });
    let anomalies = section5_anomalies();
    let mut alerts_seen = 0usize;
    let mut first_alert_for: Vec<Option<u64>> = vec![None; anomalies.len()];
    for w in (0..1500u64).step_by(30) {
        for r in 0..11u16 {
            let mut flows = generator.window_flows(0, w, 30, r);
            for a in &anomalies {
                flows.extend(a.window_flows(23, w, 30, r));
            }
            for agg in aggregate_window(&flows, w, 30) {
                if let Some(rec) = index1_record(&agg) {
                    cluster.insert(NodeId(r as u32), "index-1", rec).unwrap();
                }
            }
        }
        cluster.run_for(8 * SECONDS);
        let log = cluster.trigger_log(noc);
        while alerts_seen < log.len() {
            let (_, at, rec) = &log[alerts_seen];
            alerts_seen += 1;
            println!(
                "ALERT t={w:>4}s: fanout={:>5} to {:#010x}, stored at {at} — window {}",
                rec.value(2),
                rec.value(0),
                rec.value(1),
            );
            for (i, a) in anomalies.iter().enumerate() {
                if a.matches(rec.value(0) as u32, rec.value(3) as u32, rec.value(1))
                    && first_alert_for[i].is_none()
                {
                    first_alert_for[i] = Some(w);
                }
            }
        }
    }

    println!("\ndetection lag (first alert vs attack start):");
    for (i, a) in anomalies.iter().enumerate() {
        let kind = match a.kind {
            AnomalyKind::AlphaFlow { .. } => continue, // index-2 territory
            AnomalyKind::Dos { .. } => "DoS",
            AnomalyKind::PortScan { .. } => "port scan",
        };
        match first_alert_for[i] {
            Some(t) => println!(
                "  {kind:<10} started t={:>4}s  first alert by t={t:>4}s  (lag <= {}s)",
                a.start,
                t.saturating_sub(a.start) + 30
            ),
            None => println!("  {kind:<10} started t={:>4}s  NEVER ALERTED", a.start),
        }
    }
    assert!(alerts_seen > 0, "the attacks must raise alerts");
}
