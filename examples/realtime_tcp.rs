//! Real deployment: a MIND cluster over actual TCP sockets on localhost.
//!
//! The exact same `MindNode` state machine that the experiments drive on
//! the deterministic simulator here runs behind `TcpHost` — listener +
//! reader threads per peer, a single-threaded driver owning the logic —
//! which is how a production deployment on real machines would look
//! (one process per monitor site, peers configured by address).
//!
//! ```sh
//! cargo run --release --example realtime_tcp
//! ```

use mind::core::{MindConfig, MindNode, Replication};
use mind::histogram::CutTree;
use mind::net::TcpHost;
use mind::overlay::{OverlayConfig, StaticTopology};
use mind::types::node::MILLIS;
use mind::types::{AttrDef, AttrKind, HyperRect, IndexSchema, NodeId, Record};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

fn main() {
    const N: usize = 8;
    // Bind all listeners first so every node knows the full peer map.
    let listeners: Vec<TcpListener> = (0..N)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers: HashMap<NodeId, SocketAddr> = listeners
        .iter()
        .enumerate()
        .map(|(k, l)| (NodeId(k as u32), l.local_addr().unwrap()))
        .collect();
    println!("spawning {N} MIND nodes on localhost:");
    for (id, addr) in &peers {
        println!("  {id} @ {addr}");
    }

    let topo = StaticTopology::balanced(N);
    let overlay_cfg = OverlayConfig {
        hb_interval: 250 * MILLIS,
        ..OverlayConfig::default()
    };
    let hosts: Vec<TcpHost<MindNode>> = listeners
        .into_iter()
        .enumerate()
        .map(|(k, l)| {
            let node = MindNode::new_static(
                NodeId(k as u32),
                topo.code(k),
                topo.neighbor_entries(k),
                overlay_cfg,
                MindConfig::default(),
            );
            TcpHost::spawn(NodeId(k as u32), l, peers.clone(), node).unwrap()
        })
        .collect();

    // Create an index from node 0; the flood crosses real sockets.
    let schema = IndexSchema::new(
        "live-flows",
        vec![
            AttrDef::new("dst_prefix", AttrKind::IpPrefix, 0, u32::MAX as u64),
            AttrDef::new("timestamp", AttrKind::Timestamp, 0, 86_400),
            AttrDef::new("octets", AttrKind::Octets, 0, 2 << 20),
        ],
        3,
    );
    let cuts = CutTree::even(schema.bounds(), 8);
    hosts[0].invoke(move |n, _now, out| {
        n.create_index(schema, cuts, Replication::Level(1), out)
            .unwrap();
    });
    wait_until("index flood", Duration::from_secs(10), || {
        hosts
            .iter()
            .all(|h| h.invoke(|n, _t, _o| !n.index_tags().is_empty()))
    });
    println!("index created on all {N} nodes over TCP");

    // Every node inserts a burst of records.
    let start = Instant::now();
    for i in 0..120u64 {
        let rec = Record::new(vec![
            (i * 0x0200_0000) % (1 << 32),
            50 + i,
            (i * 977) % (2 << 20),
        ]);
        hosts[(i % N as u64) as usize]
            .invoke(move |n, now, out| n.insert(now, "live-flows", rec, out).unwrap());
    }
    wait_until("records stored", Duration::from_secs(15), || {
        let total: u64 = hosts
            .iter()
            .map(|h| {
                h.invoke(|n, _t, _o| {
                    n.index_state("live-flows")
                        .map(|s| s.primary_rows())
                        .unwrap_or(0)
                })
            })
            .sum();
        total == 120
    });
    println!("120 records durably stored in {:?}", start.elapsed());

    // Query from a different node.
    let rect = HyperRect::new(vec![0, 0, 1 << 16], vec![u32::MAX as u64, 86_400, 2 << 20]);
    let t0 = Instant::now();
    let qid =
        hosts[5].invoke(move |n, now, out| n.query(now, "live-flows", rect, vec![], out).unwrap());
    let outcome = loop {
        if let Some(o) = hosts[5].invoke(move |n, _t, _o| n.query_outcome(qid)) {
            break o;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    println!(
        "query over TCP: complete={} matches={} nodes={} wall-time={:?}",
        outcome.complete,
        outcome.records.len(),
        outcome.cost_nodes,
        t0.elapsed()
    );

    for h in hosts {
        h.shutdown();
    }
    println!("all nodes shut down cleanly");
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}
