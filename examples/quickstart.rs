//! Quickstart: stand up a small MIND deployment, create an index, insert
//! traffic summaries, and run multi-dimensional range queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mind::core::{ClusterConfig, MindCluster, Replication};
use mind::histogram::CutTree;
use mind::types::node::SECONDS;
use mind::types::{AttrDef, AttrKind, HyperRect, IndexSchema, NodeId, Record};

fn main() {
    // 1. A 16-node MIND deployment on the simulated wide-area testbed.
    //    (`MindNode` + `TcpHost` in `mind::net` runs the identical logic
    //    over real TCP; the simulator keeps this example deterministic.)
    let mut cluster = MindCluster::new(ClusterConfig::planetlab(16, 42));
    println!("deployed {} MIND nodes", cluster.len());

    // 2. Create a 3-dimensional index for large-flow monitoring:
    //    (dst_prefix, timestamp, octets), with source prefix carried.
    let schema = IndexSchema::new(
        "alpha-flows",
        vec![
            AttrDef::new("dst_prefix", AttrKind::IpPrefix, 0, u32::MAX as u64),
            AttrDef::new("timestamp", AttrKind::Timestamp, 0, 86_400),
            AttrDef::new("octets", AttrKind::Octets, 0, 2 << 20),
            AttrDef::new("src_prefix", AttrKind::IpPrefix, 0, u32::MAX as u64),
        ],
        3, // first three attributes are indexed; src_prefix is carried
    );
    let cuts = CutTree::even(schema.bounds(), 8);
    cluster
        .create_index(NodeId(0), schema, cuts, Replication::Level(1))
        .expect("create index");
    cluster.run_for(20 * SECONDS); // let the create-index flood settle
    println!("index created on every node");

    // 3. Insert aggregated flow records from different monitors.
    //    Records route to the node owning their region of the attribute
    //    space, so related records co-locate.
    for i in 0..200u64 {
        let record = Record::new(vec![
            0xC0A8_0000 + (i % 7) * 0x10000, // dst prefix
            100 + i * 30,                    // timestamp
            (i * 37_000) % (2 << 20),        // octets
            0x0A00_0000 + i,                 // src prefix (carried)
        ]);
        cluster
            .insert(NodeId((i % 16) as u32), "alpha-flows", record)
            .expect("insert");
        cluster.run_for(SECONDS / 5);
    }
    cluster.run_for(30 * SECONDS);
    println!(
        "inserted 200 records; stored: {}",
        cluster.total_primary_rows("alpha-flows")
    );

    // 4. Ask the monitoring question: any flow bigger than 1 MB to the
    //    192.168/13 neighborhood in the first two hours?
    let query = HyperRect::new(
        vec![0xC0A8_0000, 0, 1 << 20],
        vec![0xC0AF_FFFF, 7200, 2 << 20],
    );
    let outcome = cluster
        .query_and_wait(NodeId(5), "alpha-flows", query, vec![])
        .expect("query");
    println!(
        "query complete={} matches={} nodes-visited={} latency={:.3}s",
        outcome.complete,
        outcome.records.len(),
        outcome.cost_nodes,
        outcome.latency.unwrap_or(0) as f64 / 1e6,
    );
    for r in outcome.records.iter().take(5) {
        println!(
            "  dst={:#010x} t={} octets={} src={:#010x}",
            r.value(0),
            r.value(1),
            r.value(2),
            r.value(3)
        );
    }
    assert!(outcome.complete);
}
