//! Anomaly hunting: the paper's Section 5 scenario as an application.
//!
//! An 11-node MIND overlay congruent to the Abilene backbone indexes 25
//! minutes of backbone traffic containing injected anomalies. A network
//! operator then *drills down*: a broad standing query finds suspicious
//! fanouts, and progressively narrower queries isolate each attack and
//! recover the backbone path it took.
//!
//! ```sh
//! cargo run --release --example anomaly_hunt
//! ```

use mind::core::Replication;
use mind::histogram::CutTree;
use mind::traffic::anomaly::{section5_anomalies, AnomalyKind};
use mind::traffic::schemas::{index1_record, index1_schema, FANOUT_BOUND};
use mind::traffic::{aggregate_window, TrafficConfig, TrafficGenerator};
use mind::types::node::SECONDS;
use mind::types::{HyperRect, NodeId};
use mind_core::{ClusterConfig, MindCluster};

const ABILENE: [&str; 11] = [
    "STTL", "SNVA", "LOSA", "DNVR", "KSCY", "HSTN", "CHIN", "IPLS", "ATLA", "WASH", "NYCM",
];

fn main() {
    // Deploy at the 11 Abilene router cities.
    let mut cfg = ClusterConfig::baseline(7);
    cfg.sites = mind::netsim::topology::abilene_sites();
    let mut cluster = MindCluster::new(cfg);

    // Index-1: (dst_prefix, timestamp, fanout) — the scan/DoS detector.
    let schema = index1_schema(1800);
    let cuts = CutTree::even(schema.bounds(), 9);
    cluster
        .create_index(NodeId(0), schema, cuts, Replication::Level(1))
        .unwrap();
    cluster.run_for(15 * SECONDS);

    // Stream 25 minutes of traffic with hidden attacks.
    let generator = TrafficGenerator::new(TrafficConfig {
        routers: 11,
        ..Default::default()
    });
    let anomalies = section5_anomalies();
    let mut inserted = 0u64;
    for w in (0..1500u64).step_by(30) {
        for r in 0..11u16 {
            let mut flows = generator.window_flows(0, w, 30, r);
            for a in &anomalies {
                flows.extend(a.window_flows(7, w, 30, r));
            }
            for agg in aggregate_window(&flows, w, 30) {
                if let Some(rec) = index1_record(&agg) {
                    cluster.insert(NodeId(r as u32), "index-1", rec).unwrap();
                    inserted += 1;
                }
            }
        }
        cluster.run_for(10 * SECONDS);
    }
    cluster.run_for(30 * SECONDS);
    println!("indexed {inserted} suspicious aggregates from 25 min of traffic\n");

    // Step 1 — the standing monitoring query: "any source fanning out to
    // more than 1500 connections in the last half hour?"
    let broad = HyperRect::new(vec![0, 0, 1500], vec![u32::MAX as u64, 1800, FANOUT_BOUND]);
    let hits = cluster
        .query_and_wait(NodeId(6), "index-1", broad, vec![])
        .unwrap();
    println!(
        "step 1: broad sweep -> {} suspicious aggregates ({} nodes answered, {:.2}s)",
        hits.records.len(),
        hits.cost_nodes,
        hits.latency.unwrap_or(0) as f64 / 1e6
    );

    // Step 2 — drill down per victim prefix: tighten the box around each
    // distinct destination seen in step 1.
    let mut victims: Vec<u64> = hits.records.iter().map(|r| r.value(0)).collect();
    victims.sort_unstable();
    victims.dedup();
    for v in victims {
        let narrow = HyperRect::new(vec![v, 0, 1500], vec![v, 1800, FANOUT_BOUND]);
        let focused = cluster
            .query_and_wait(NodeId(6), "index-1", narrow, vec![])
            .unwrap();
        // The `node` attribute of each record names the observing router:
        // the attack's path through the backbone.
        let mut path: Vec<&str> = focused
            .records
            .iter()
            .map(|r| ABILENE[r.value(4) as usize % 11])
            .collect();
        path.sort_unstable();
        path.dedup();
        let windows = {
            let mut w: Vec<u64> = focused.records.iter().map(|r| r.value(1)).collect();
            w.sort_unstable();
            (
                w.first().copied().unwrap_or(0),
                w.last().copied().unwrap_or(0),
            )
        };
        println!(
            "step 2: victim {:#010x}: {} records, t=[{}..{}], path {}",
            v,
            focused.records.len(),
            windows.0,
            windows.1,
            path.join(","),
        );
    }

    // Cross-check against the injected ground truth.
    println!("\nground truth:");
    for a in &anomalies {
        let kind = match a.kind {
            AnomalyKind::AlphaFlow { .. } => "alpha flow (not in index-1 sweep)",
            AnomalyKind::Dos { .. } => "DoS",
            AnomalyKind::PortScan { .. } => "port scan",
        };
        println!(
            "  {:10} victim {:#010x} t=[{}..{}] via {}",
            kind,
            a.dst_prefix,
            a.start,
            a.start + a.duration,
            a.routers
                .iter()
                .map(|&r| ABILENE[r as usize])
                .collect::<Vec<_>>()
                .join(","),
        );
    }
}
