//! Backbone monitoring: the paper's baseline deployment end-to-end.
//!
//! 34 MIND nodes at the Abilene + GÉANT router cities index a continuous
//! feed of aggregated flow records (Index-2: large flows). The example
//! shows the operational loop: balanced cuts computed from yesterday's
//! distribution, continuous insertion at the 30-second cadence, standing
//! five-minute monitoring queries, and the storage/traffic balance a
//! network operator would watch.
//!
//! ```sh
//! cargo run --release --example backbone_monitoring
//! ```

use mind::core::Replication;
use mind::types::node::SECONDS;
use mind::types::NodeId;
use mind_bench::harness::{
    balanced_cuts, baseline_cluster, install_index, monitoring_query, ExperimentScale, IndexKind,
    TrafficDriver,
};
use mind_core::LatencySummary;

fn main() {
    let scale = ExperimentScale {
        volume: 1.0,
        hours: 1,
    };
    let kind = IndexKind::Octets;
    let ts_bound = 86_400;
    let t0 = 11 * 3600; // late morning
    let span = 600; // ten minutes of trace

    // 1. Deploy and create the index with cuts balanced on a sample of
    //    the same period (the operator's off-line database design step).
    let driver = TrafficDriver::abilene_geant(99, scale);
    let mut cluster = baseline_cluster(99);
    let cuts = balanced_cuts(kind, &driver, ts_bound, 10, t0, t0 + span);
    install_index(&mut cluster, kind, cuts, ts_bound, Replication::Level(1));
    println!("34-node Abilene+GÉANT deployment ready");

    // 2. Stream the feed and interleave standing monitoring queries.
    let mut total = 0u64;
    let mut latencies = Vec::new();
    for minute in 0..(span / 60) {
        let w0 = t0 + minute * 60;
        total += driver.drive(&mut cluster, &[kind], 0, w0, w0 + 60, ts_bound, None);
        if minute >= 5 {
            // "Anything over 1 MB to anywhere in the last five minutes?"
            let q = monitoring_query(kind, w0 + 60);
            let outcome = cluster
                .query_and_wait(NodeId((minute % 34) as u32), kind.tag(), q, vec![])
                .unwrap();
            println!(
                "minute {:>2}: {:>6} records indexed | monitoring query: {} hits, {} nodes, {:.2}s",
                minute + 1,
                total,
                outcome.records.len(),
                outcome.cost_nodes,
                outcome.latency.unwrap_or(0) as f64 / 1e6,
            );
            if let Some(l) = outcome.latency {
                latencies.push(l);
            }
        }
    }
    cluster.run_for(30 * SECONDS);

    // 3. The operator's dashboard numbers.
    let insert_lat = LatencySummary::from_samples(cluster.insert_latency_samples());
    let query_lat = LatencySummary::from_samples(latencies);
    let dist = cluster.storage_distribution(kind.tag());
    let max = dist.iter().max().copied().unwrap_or(0);
    let busiest = cluster.world().stats.busiest_link();
    println!("\n== dashboard ==");
    println!("records indexed:    {total}");
    println!("insert latency:     {}", insert_lat.format_seconds());
    println!("query latency:      {}", query_lat.format_seconds());
    println!(
        "storage balance:    max node {max} of {} total ({} nodes hold data)",
        dist.iter().sum::<u64>(),
        dist.iter().filter(|&&c| c > 0).count(),
    );
    if let Some(((a, b), stats)) = busiest {
        println!(
            "busiest link:       {a} -> {b} ({} msgs, {} tuples)",
            stats.messages, stats.data_messages
        );
    }
}
